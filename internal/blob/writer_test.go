package blob

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"blobdb/internal/extent"
)

// newWriterEnv builds an env sized for multi-extent blobs.
func newWriterEnv(t testing.TB, useTail bool) *env {
	e := newEnv(t, 1<<16 /* 256MB device */, 1<<15 /* 128MB pool */, false)
	e.mgr.UseTail = useTail
	return e
}

// sealWriter drives a writer through the Manager-level commit protocol the
// transaction layer implements: Close, then flush + release the pending.
func sealWriter(t *testing.T, w *Writer) *State {
	t.Helper()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st, pend, _ := w.Sealed()
	commit(t, pend)
	return st
}

// statesEqual compares everything the paper's Blob State carries. When
// wantPIDs is false the extent layout is compared by shape (count and tail
// pages) but not by physical position — the streaming writer's deferred
// tail conversion allocates in a different order than the one-shot plan,
// so PIDs legitimately differ even though the layout is identical.
func statesEqual(t *testing.T, got, want *State, wantPIDs bool) {
	t.Helper()
	if got.Size != want.Size {
		t.Errorf("size: got %d want %d", got.Size, want.Size)
	}
	if got.SHA256 != want.SHA256 {
		t.Errorf("sha256 mismatch")
	}
	if got.Prefix != want.Prefix {
		t.Errorf("prefix mismatch: got %x want %x", got.Prefix, want.Prefix)
	}
	if got.Intermediate != want.Intermediate {
		t.Errorf("resumable hash intermediate mismatch")
	}
	if len(got.Extents) != len(want.Extents) {
		t.Fatalf("extent count: got %d want %d", len(got.Extents), len(want.Extents))
	}
	if got.Tail.Pages != want.Tail.Pages {
		t.Errorf("tail pages: got %d want %d", got.Tail.Pages, want.Tail.Pages)
	}
	if wantPIDs {
		for i := range want.Extents {
			if got.Extents[i] != want.Extents[i] {
				t.Errorf("extent %d: got PID %d want %d", i, got.Extents[i], want.Extents[i])
			}
		}
		if got.Tail.PID != want.Tail.PID {
			t.Errorf("tail PID: got %d want %d", got.Tail.PID, want.Tail.PID)
		}
	}
}

// TestWriterOneShotEquivalence is the api_redesign acceptance test: a blob
// streamed through the Writer seals to a State byte-identical to the
// deprecated one-shot Allocate — same size, SHA-256, prefix, resumable
// intermediate, and extent layout — across extent boundaries, both write
// entry points, both pipeline modes, and with tail extents on and off.
func TestWriterOneShotEquivalence(t *testing.T) {
	sizes := []int{
		0, 1, 31, 32, 100,
		ps - 1, ps, ps + 1,
		3*ps + 7,
		1023 * ps,     // exactly the level-0 tiers
		1023*ps + 1,   // one byte into the next tier
		2047 * ps,     // exactly through tier 10
		100<<10 + 37,  // ~100KB
		1<<20 + 12345, // ~1MB
	}
	rng := rand.New(rand.NewSource(7))
	for _, useTail := range []bool{false, true} {
		for _, stream := range []bool{false, true} {
			for _, readFrom := range []bool{false, true} {
				for _, size := range sizes {
					name := fmt.Sprintf("tail=%v/stream=%v/readfrom=%v/size=%d", useTail, stream, readFrom, size)
					t.Run(name, func(t *testing.T) {
						data := randBytes(rng, size)

						ref := newWriterEnv(t, useTail)
						want, pend, _, err := writerAlloc(ref.mgr, data)
						if err != nil {
							t.Fatal(err)
						}
						commit(t, pend)

						e := newWriterEnv(t, useTail)
						w, err := e.mgr.NewWriter(WriterOpts{Stream: stream})
						if err != nil {
							t.Fatal(err)
						}
						if readFrom {
							if n, err := w.ReadFrom(bytes.NewReader(data)); err != nil || n != int64(size) {
								t.Fatalf("ReadFrom: n=%d err=%v", n, err)
							}
						} else {
							// Irregular chunk sizes cross extent boundaries
							// mid-chunk.
							for off := 0; off < len(data); {
								n := 1 + rng.Intn(48<<10)
								if off+n > len(data) {
									n = len(data) - off
								}
								if _, err := w.Write(data[off : off+n]); err != nil {
									t.Fatalf("Write at %d: %v", off, err)
								}
								off += n
							}
						}
						got := sealWriter(t, w)

						// With tails the writer transiently allocates the
						// last tier extent before converting it, shifting
						// later PIDs; layout shape must still match Plan.
						statesEqual(t, got, want, !useTail)

						back, err := e.mgr.ReadAll(nil, got)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(back, data) {
							t.Errorf("content mismatch after streamed write")
						}
						if sha256.Sum256(back) != got.SHA256 {
							t.Errorf("stored content does not match sealed SHA-256")
						}
					})
				}
			}
		}
	}
}

// TestWriterAppendEquivalence checks the streaming append path (§III-D)
// against the deprecated one-shot Grow: same resumed hash, same layout,
// same content — including the tail-clone step when the base has a tail.
func TestWriterAppendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ base, extra int }{
		{0, 100},
		{100, 0}, // no-op append must leave the state (and tail) untouched
		{ps / 2, ps * 2},
		{1023 * ps, 64 << 10}, // base ends exactly on a tier boundary
		{100 << 10, 300 << 10},
	}
	for _, useTail := range []bool{false, true} {
		for _, tc := range cases {
			name := fmt.Sprintf("tail=%v/base=%d/extra=%d", useTail, tc.base, tc.extra)
			t.Run(name, func(t *testing.T) {
				baseData := randBytes(rng, tc.base)
				extra := randBytes(rng, tc.extra)

				ref := newWriterEnv(t, useTail)
				refBase, pend, _, err := writerAlloc(ref.mgr, baseData)
				if err != nil {
					t.Fatal(err)
				}
				commit(t, pend)
				want, gpend, _, err := writerGrow(ref.mgr, refBase, extra)
				if err != nil {
					t.Fatal(err)
				}
				commit(t, gpend)

				e := newWriterEnv(t, useTail)
				base, pend2, _, err := writerAlloc(e.mgr, baseData)
				if err != nil {
					t.Fatal(err)
				}
				commit(t, pend2)
				w, err := e.mgr.NewWriter(WriterOpts{Stream: true, Base: base})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.Write(extra); err != nil {
					t.Fatal(err)
				}
				got := sealWriter(t, w)

				statesEqual(t, got, want, true)
				back, err := e.mgr.ReadAll(nil, got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(back, append(append([]byte{}, baseData...), extra...)) {
					t.Errorf("content mismatch after streamed append")
				}
			})
		}
	}
}

// patternReader yields a deterministic byte stream without materializing
// it, in deliberately awkward read sizes.
type patternReader struct {
	n, limit int64
	h        func(i int64) byte
}

func (r *patternReader) Read(p []byte) (int, error) {
	if r.n >= r.limit {
		return 0, io.EOF
	}
	if len(p) > 37<<10 {
		p = p[:37<<10] // force many small reads
	}
	n := int64(len(p))
	if n > r.limit-r.n {
		n = r.limit - r.n
	}
	for i := int64(0); i < n; i++ {
		p[i] = r.h(r.n + i)
	}
	r.n += n
	return int(n), nil
}

// TestWriterStreaming64MiBBoundedMemory is the tentpole acceptance test:
// streaming a 64 MiB blob must never pin more than two extents of frames
// at once — peak buffered bytes stay under 2x the largest tier extent the
// blob uses, not O(blob). (With T=10 tiers the largest extent of a 16384-
// page blob is itself large; the bound is about the pipeline never
// accumulating extents, which the one-shot path fundamentally does.)
func TestWriterStreaming64MiBBoundedMemory(t *testing.T) {
	const size = 64 << 20
	e := newWriterEnv(t, false)
	w, err := e.mgr.NewWriter(WriterOpts{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	pat := func(i int64) byte { return byte(i*31 + i>>13) }
	n, err := w.ReadFrom(&patternReader{limit: size, h: pat})
	if err != nil || n != size {
		t.Fatalf("ReadFrom: n=%d err=%v", n, err)
	}
	st := sealWriter(t, w)
	if st.Size != size {
		t.Fatalf("sealed size %d", st.Size)
	}

	// The bound: strictly fewer bytes pinned than two of the largest used
	// extent. The one-shot path pins the full 64 MiB (16384 pages).
	tiers := e.alloc.Tiers()
	largest := uint64(0)
	for i := range st.Extents {
		if s := tiers.Size(i); s > largest {
			largest = s
		}
	}
	bound := 2 * int64(largest) * int64(ps)
	if peak := w.PeakPinnedBytes(); peak >= bound {
		t.Errorf("peak pinned %d bytes, want < %d (2 x largest extent)", peak, bound)
	} else {
		t.Logf("64 MiB blob: peak pinned %.1f MiB, bound %.1f MiB, extents %d",
			float64(peak)/(1<<20), float64(bound)/(1<<20), len(st.Extents))
	}

	// And the content must still be exactly right.
	back, err := e.mgr.ReadAll(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < size; i += 997 {
		if back[i] != pat(i) {
			t.Fatalf("content mismatch at %d", i)
		}
	}
}

// TestWriterAbortReclaimsEverything aborts mid-blob (in both modes) and
// checks every allocated page went back to the allocator.
func TestWriterAbortReclaimsEverything(t *testing.T) {
	for _, stream := range []bool{false, true} {
		t.Run(fmt.Sprintf("stream=%v", stream), func(t *testing.T) {
			e := newWriterEnv(t, true)
			w, err := e.mgr.NewWriter(WriterOpts{Stream: stream})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(randBytes(rand.New(rand.NewSource(3)), 3<<20)); err != nil {
				t.Fatal(err)
			}
			w.Abort()
			if st := e.alloc.Stats(); st.LivePages != 0 {
				t.Errorf("abort leaked %d live pages", st.LivePages)
			}
			if err := w.Close(); err != ErrWriterAborted {
				t.Errorf("Close after Abort: got %v want ErrWriterAborted", err)
			}
			if _, err := w.Write([]byte("x")); err != ErrWriterAborted {
				t.Errorf("Write after Abort: got %v want ErrWriterAborted", err)
			}
		})
	}
}

// TestWriterContextCancel cancels the writer's context mid-stream: further
// writes fail, Close reports the cancellation, and Abort reclaims all
// extents — the blobserver relies on this to unwind abandoned uploads.
func TestWriterContextCancel(t *testing.T) {
	e := newWriterEnv(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	w, err := e.mgr.NewWriter(WriterOpts{Stream: true, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := w.Write([]byte("more")); err != context.Canceled {
		t.Errorf("Write after cancel: got %v want context.Canceled", err)
	}
	if err := w.Close(); err != context.Canceled {
		t.Errorf("Close after cancel: got %v want context.Canceled", err)
	}
	if st := e.alloc.Stats(); st.LivePages != 0 {
		t.Errorf("cancelled writer leaked %d live pages", st.LivePages)
	}
}

// TestWriterSealIdempotent double-Close returns nil and the same state.
func TestWriterSealIdempotent(t *testing.T) {
	e := newWriterEnv(t, false)
	w, err := e.mgr.NewWriter(WriterOpts{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	st := sealWriter(t, w)
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if w.State() != st {
		t.Error("second Close changed the sealed state")
	}
	if _, err := w.Write([]byte("x")); err != ErrWriterSealed {
		t.Errorf("Write after Close: got %v want ErrWriterSealed", err)
	}
	if st.Size != 5 || st.SHA256 != sha256.Sum256([]byte("hello")) {
		t.Error("sealed state wrong")
	}
}

// TestWriterTooLarge drives the writer past the tier table on a tiny
// allocator and expects the typed sentinel.
func TestWriterTooLarge(t *testing.T) {
	e := newEnv(t, 1<<12, 1<<12, false)
	// Exhaust the heap: a 4096-page device cannot hold unbounded growth,
	// so the allocator (not the tier table) errors first; either way the
	// writer must fail cleanly and Abort must reclaim what it got.
	w, err := e.mgr.NewWriter(WriterOpts{Stream: false})
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 1<<20)
	var werr error
	for i := 0; i < 64; i++ {
		if _, werr = w.Write(chunk); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("writer accepted more bytes than the device holds")
	}
	w.Abort()
	if st := e.alloc.Stats(); st.LivePages != 0 {
		t.Errorf("failed writer leaked %d live pages", st.LivePages)
	}
}

// TestWriterTailLayoutMatchesPlan spot-checks that deferred tail
// conversion produces exactly the layout TierTable.Plan prescribes.
func TestWriterTailLayoutMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{1, ps + 1, 100 << 10, 1<<20 + 17, 1023 * ps} {
		e := newWriterEnv(t, true)
		w, err := e.mgr.NewWriter(WriterOpts{Stream: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(randBytes(rng, size)); err != nil {
			t.Fatal(err)
		}
		st := sealWriter(t, w)
		slots, tailPages := e.alloc.Tiers().Plan(extent.PagesFor(uint64(size), ps), true)
		if len(st.Extents) != len(slots) {
			t.Errorf("size %d: %d extents, plan says %d", size, len(st.Extents), len(slots))
		}
		if st.Tail.Pages != tailPages {
			t.Errorf("size %d: tail %d pages, plan says %d", size, st.Tail.Pages, tailPages)
		}
	}
}
