package repl

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"blobdb/internal/core"
	"blobdb/internal/storage"
)

func newEngine(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.New(storage.NewMemDevice(storage.DefaultPageSize, 1<<14, nil),
		core.WithPoolPages(1<<12),
		core.WithLogPages(1<<10),
		core.WithCkptPages(1<<11),
		core.WithAsyncCommit(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.CloseCommitter() })
	return db
}

func newPair(t *testing.T) (*core.DB, *Replica) {
	t.Helper()
	primary := newEngine(t)
	if _, err := primary.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(newEngine(t), NewEngineSource(primary))
	return primary, rep
}

func putBlob(t *testing.T, db *core.DB, rel, key string, content []byte) {
	t.Helper()
	tx := db.Begin(nil)
	w, err := tx.CreateBlob(nil, rel, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitWait(); err != nil {
		t.Fatal(err)
	}
}

func putInline(t *testing.T, db *core.DB, rel, key string, value []byte) {
	t.Helper()
	tx := db.Begin(nil)
	if err := tx.Put(rel, []byte(key), value); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitWait(); err != nil {
		t.Fatal(err)
	}
}

func readBlob(t *testing.T, db *core.DB, rel, key string) ([]byte, string, bool) {
	t.Helper()
	tx := db.Begin(nil)
	defer tx.Commit()
	st, err := tx.BlobState(rel, []byte(key))
	if errors.Is(err, core.ErrNotFound) || errors.Is(err, core.ErrRelationNotFound) {
		return nil, "", false
	}
	if err != nil {
		t.Fatal(err)
	}
	content, err := tx.ReadBlobBytes(rel, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	return content, st.ETag(), true
}

func etagOf(t *testing.T, db *core.DB, rel, key string) string {
	t.Helper()
	tx := db.Begin(nil)
	defer tx.Commit()
	st, err := tx.BlobState(rel, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	return st.ETag()
}

// TestReplicateBasic: puts, an overwrite, an inline value, and a delete all
// reach the replica with byte-identical content and ETags, and the applied
// LSN tracks the primary's durable horizon.
func TestReplicateBasic(t *testing.T) {
	ctx := context.Background()
	primary, rep := newPair(t)

	putBlob(t, primary, "r", "a", bytes.Repeat([]byte("alpha "), 500))
	putBlob(t, primary, "r", "b", []byte("beta"))
	putInline(t, primary, "r", "i", []byte("inline-value"))

	lsn, err := rep.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 || lsn != rep.AppliedLSN() {
		t.Fatalf("applied LSN %d after sync", lsn)
	}
	if lsn != primary.WAL().DurableLSN() {
		t.Fatalf("applied %d, primary durable %d", lsn, primary.WAL().DurableLSN())
	}

	for _, key := range []string{"a", "b"} {
		got, etag, ok := readBlob(t, rep.DB(), "r", key)
		if !ok {
			t.Fatalf("key %q missing on replica", key)
		}
		want, wantTag, _ := readBlob(t, primary, "r", key)
		if !bytes.Equal(got, want) || etag != wantTag {
			t.Fatalf("key %q: replica diverged (etag %s vs %s)", key, etag, wantTag)
		}
	}
	tx := rep.DB().Begin(nil)
	v, err := tx.Get("r", []byte("i"))
	tx.Commit()
	if err != nil || string(v) != "inline-value" {
		t.Fatalf("inline value on replica = %q, %v", v, err)
	}

	// Overwrite and delete, then a second sync round.
	putBlob(t, primary, "r", "a", []byte("alpha-v2"))
	delTx := primary.Begin(nil)
	if err := delTx.DeleteBlob("r", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := delTx.CommitWait(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	got, etag, ok := readBlob(t, rep.DB(), "r", "a")
	if !ok || !bytes.Equal(got, []byte("alpha-v2")) || etag != etagOf(t, primary, "r", "a") {
		t.Fatalf("overwrite not replicated: %q ok=%v", got, ok)
	}
	if _, _, ok := readBlob(t, rep.DB(), "r", "b"); ok {
		t.Fatal("deleted key survived on replica")
	}
}

// TestReplicateSkipsAborted: an aborted transaction's records never reach
// the replica's state.
func TestReplicateSkipsAborted(t *testing.T) {
	ctx := context.Background()
	primary, rep := newPair(t)

	tx := primary.Begin(nil)
	w, err := tx.CreateBlob(nil, "r", []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("never")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	putBlob(t, primary, "r", "kept", []byte("kept"))

	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := readBlob(t, rep.DB(), "r", "doomed"); ok {
		t.Fatal("aborted transaction replicated")
	}
	if _, _, ok := readBlob(t, rep.DB(), "r", "kept"); !ok {
		t.Fatal("committed transaction missing")
	}
}

// TestReplicaStaleness: commits the replica has not pulled yet are
// invisible — bounded staleness, not divergence. After the next sync the
// ETags converge to the primary's.
func TestReplicaStaleness(t *testing.T) {
	ctx := context.Background()
	primary, rep := newPair(t)

	putBlob(t, primary, "r", "k", []byte("v1"))
	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	h1 := rep.AppliedLSN()
	v1tag := etagOf(t, rep.DB(), "r", "k")

	putBlob(t, primary, "r", "k", []byte("v2"))
	// No sync yet: the replica still serves v1 at horizon h1.
	if got := rep.AppliedLSN(); got != h1 {
		t.Fatalf("applied moved without sync: %d -> %d", h1, got)
	}
	if tag := etagOf(t, rep.DB(), "r", "k"); tag != v1tag {
		t.Fatalf("replica changed without sync")
	}
	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.AppliedLSN() <= h1 {
		t.Fatalf("applied did not advance: %d", rep.AppliedLSN())
	}
	if tag := etagOf(t, rep.DB(), "r", "k"); tag != etagOf(t, primary, "r", "k") {
		t.Fatal("replica etag diverged after sync")
	}
}

// TestReplicaResync: a replica attaching after the primary checkpointed
// (truncating the records it would need) installs the snapshot and then
// tails normally.
func TestReplicaResync(t *testing.T) {
	ctx := context.Background()
	primary, rep := newPair(t)

	putBlob(t, primary, "r", "old", bytes.Repeat([]byte("x"), 4000))
	putInline(t, primary, "r", "num", []byte("42"))
	if err := primary.WAL().Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if primary.WAL().TruncatedLSN() == 0 {
		t.Fatal("checkpoint did not truncate")
	}
	putBlob(t, primary, "r", "new", []byte("post-checkpoint"))

	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.Resyncs() != 1 {
		t.Fatalf("resyncs = %d, want 1", rep.Resyncs())
	}
	for _, key := range []string{"old", "new"} {
		got, etag, ok := readBlob(t, rep.DB(), "r", key)
		if !ok {
			t.Fatalf("key %q missing after resync", key)
		}
		want, wantTag, _ := readBlob(t, primary, "r", key)
		if !bytes.Equal(got, want) || etag != wantTag {
			t.Fatalf("key %q diverged after resync", key)
		}
	}
	tx := rep.DB().Begin(nil)
	v, err := tx.Get("r", []byte("num"))
	tx.Commit()
	if err != nil || string(v) != "42" {
		t.Fatalf("inline after resync = %q, %v", v, err)
	}

	// Resync also drops tuples the primary no longer has: simulate a
	// diverged replica by planting a local key, then force another resync.
	putBlob(t, rep.DB(), "r", "phantom", []byte("local-only"))
	for i := 0; i < 40; i++ {
		putBlob(t, primary, "r", "churn", bytes.Repeat([]byte{byte(i)}, 3000))
		if err := primary.WAL().Checkpoint(nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.Resyncs() < 2 {
		t.Fatalf("second truncation did not resync (resyncs=%d)", rep.Resyncs())
	}
	if _, _, ok := readBlob(t, rep.DB(), "r", "phantom"); ok {
		t.Fatal("resync kept a tuple the primary does not have")
	}
}

// TestPromote: after Promote the engine takes writes, and Sync refuses to
// run — the failover contract.
func TestPromote(t *testing.T) {
	ctx := context.Background()
	primary, rep := newPair(t)
	putBlob(t, primary, "r", "k", []byte("from-primary"))
	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	horizon := rep.AppliedLSN()

	db := rep.Promote()
	if !rep.Promoted() {
		t.Fatal("Promoted() false after Promote")
	}
	if rep.AppliedLSN() != horizon {
		t.Fatal("promotion moved the applied horizon")
	}
	if _, err := rep.Sync(ctx); !errors.Is(err, ErrPromoted) {
		t.Fatalf("Sync after promote = %v, want ErrPromoted", err)
	}

	// The promoted engine serves the replicated state and accepts writes.
	if _, _, ok := readBlob(t, db, "r", "k"); !ok {
		t.Fatal("replicated key missing after promotion")
	}
	putBlob(t, db, "r", "k2", []byte("post-failover"))
	if got, _, ok := readBlob(t, db, "r", "k2"); !ok || !bytes.Equal(got, []byte("post-failover")) {
		t.Fatal("promoted engine write failed")
	}
}

// TestMultiTxnBatchOrder: a group-commit batch of distinct-key
// transactions replicates whole, and successive commits to one key pulled
// in a single sync apply in commit order — the last committed writer wins.
func TestMultiTxnBatchOrder(t *testing.T) {
	ctx := context.Background()
	primary, rep := newPair(t)

	// One group-commit batch, three transactions, distinct keys (same-key
	// writers serialize on the row lock and cannot share a held batch).
	primary.HoldCommits()
	var acks []<-chan error
	for i := 0; i < 3; i++ {
		tx := primary.Begin(nil)
		w, err := tx.CreateBlob(nil, "r", []byte{'k', byte('0' + i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte{'v', byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		ch, err := tx.CommitAsync()
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ch)
	}
	primary.ReleaseCommits()
	for _, ch := range acks {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	// Two sequential rewrites of one key, both inside the same pull window.
	putBlob(t, primary, "r", "k", []byte("first"))
	putBlob(t, primary, "r", "k", []byte("second"))

	if _, err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, _, ok := readBlob(t, rep.DB(), "r", string([]byte{'k', byte('0' + i)}))
		if !ok || !bytes.Equal(got, []byte{'v', byte('0' + i)}) {
			t.Fatalf("batch txn %d: replica has %q ok=%v", i, got, ok)
		}
	}
	got, etag, ok := readBlob(t, rep.DB(), "r", "k")
	if !ok || !bytes.Equal(got, []byte("second")) {
		t.Fatalf("commit order: replica has %q, want second", got)
	}
	if etag != etagOf(t, primary, "r", "k") {
		t.Fatal("commit order: etag diverged")
	}
}
