package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"blobdb/internal/core"
)

// HTTPSource tails a blobserver primary's /repl/v1 API — the
// between-processes transport of the replication protocol. It mirrors
// EngineSource exactly: the server side of every endpoint is implemented
// with an EngineSource over the primary's engine.
type HTTPSource struct {
	base  string
	hc    *http.Client
	shard int
}

// NewHTTPSource tails the primary at base (e.g. "http://db0:8080"). hc nil
// means http.DefaultClient. Against a sharded primary, Shard selects which
// shard's stream to follow.
func NewHTTPSource(base string, hc *http.Client) *HTTPSource {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &HTTPSource{base: strings.TrimRight(base, "/"), hc: hc}
}

// Shard returns a source tailing the given shard's stream (default 0).
func (s *HTTPSource) Shard(id int) *HTTPSource {
	c := *s
	c.shard = id
	return &c
}

func (s *HTTPSource) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("repl: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

func (s *HTTPSource) getJSON(ctx context.Context, path string, v any) error {
	resp, err := s.get(ctx, path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Pull returns the primary's durable records above after.
func (s *HTTPSource) Pull(ctx context.Context, after uint64) (Pull, error) {
	var p Pull
	err := s.getJSON(ctx, fmt.Sprintf("/repl/v1/pull?after=%d&shard=%d", after, s.shard), &p)
	return p, err
}

// FetchBlob streams the primary's current committed content for the key.
func (s *HTTPSource) FetchBlob(ctx context.Context, rel string, key []byte) (string, io.ReadCloser, error) {
	path := "/repl/v1/blob/" + url.PathEscape(rel) + "/" + escapeKeyPath(key) + "?shard=" + strconv.Itoa(s.shard)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return "", nil, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return "", nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return "", nil, core.ErrBlobVanished
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return "", nil, fmt.Errorf("repl: fetch blob %q/%q: %s: %s", rel, key, resp.Status, strings.TrimSpace(string(body)))
	}
	etag := strings.Trim(resp.Header.Get("ETag"), `"`)
	return etag, resp.Body, nil
}

// Snapshot fetches a full logical image for resync.
func (s *HTTPSource) Snapshot(ctx context.Context) (*Snapshot, error) {
	snap := &Snapshot{}
	if err := s.getJSON(ctx, fmt.Sprintf("/repl/v1/snapshot?shard=%d", s.shard), snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// escapeKeyPath escapes a key for use as a path suffix, preserving "/" so
// hierarchical keys round-trip through the {key...} wildcard.
func escapeKeyPath(key []byte) string {
	parts := strings.Split(string(key), "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}
