package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"blobdb/internal/blob"
	"blobdb/internal/core"
	"blobdb/internal/wal"
)

// ErrPromoted is returned by Sync and Run after Promote: the engine no
// longer follows a primary.
var ErrPromoted = errors.New("repl: replica has been promoted")

// Replica tails a primary's record stream into its own engine. Reads go
// through DB() at any time; Sync applies one pull batch; Promote ends
// replication and makes the engine the new primary.
type Replica struct {
	db  *core.DB
	src Source

	mu       sync.Mutex // serializes Sync/Promote
	applied  atomic.Uint64
	promoted atomic.Bool
	// pending buffers records of transactions whose commit record has not
	// yet arrived — a transaction's records may straddle pull batches.
	pending map[uint64][]wal.Record
	resyncs atomic.Uint64
}

// NewReplica attaches an empty (or previously-caught-up) engine to a
// source. The engine must not take local writes while replication runs.
func NewReplica(db *core.DB, src Source) *Replica {
	return &Replica{db: db, src: src, pending: map[uint64][]wal.Record{}}
}

// DB exposes the replica's engine for reads (and for everything, after
// Promote).
func (r *Replica) DB() *core.DB { return r.db }

// AppliedLSN is the staleness horizon: every primary transaction whose
// commit record is at or below it is fully applied.
func (r *Replica) AppliedLSN() uint64 { return r.applied.Load() }

// Promoted reports whether Promote has been called.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// Resyncs counts snapshot resyncs taken (truncation raced the tail).
func (r *Replica) Resyncs() uint64 { return r.resyncs.Load() }

// Sync performs one replication round: pull the durable records above the
// applied horizon (resyncing from a snapshot if they were truncated
// away), apply every newly committed transaction in commit order, and
// advance the applied LSN to the batch's durable horizon. It returns the
// new applied LSN.
func (r *Replica) Sync(ctx context.Context) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted.Load() {
		return r.applied.Load(), ErrPromoted
	}
	for {
		p, err := r.src.Pull(ctx, r.applied.Load())
		if err != nil {
			return r.applied.Load(), err
		}
		if p.Resync {
			if err := r.resync(ctx); err != nil {
				return r.applied.Load(), err
			}
			continue // tail from the snapshot LSN
		}
		if err := r.apply(ctx, p.Records); err != nil {
			return r.applied.Load(), err
		}
		if p.Durable > r.applied.Load() {
			r.applied.Store(p.Durable)
		}
		return r.applied.Load(), nil
	}
}

// apply replays each transaction whose commit record is in the batch, in
// commit-LSN order, advancing the applied LSN past each commit as it
// lands. Each transaction applies atomically (one replica transaction),
// so a mid-batch failure — the primary crashing under a blob fetch, a
// transport blip — leaves an exact prefix: every commit at or below the
// applied LSN is fully in, everything above is absent. Records of
// not-yet-applied transactions at or below the new horizon are folded
// into the pending buffers before returning (the retry pulls only above
// the horizon), so a later Sync completes the batch without loss or
// duplication.
func (r *Replica) apply(ctx context.Context, recs []wal.Record) error {
	delta := map[uint64][]wal.Record{} // this batch's ops, per txn
	type commitAt struct{ txn, lsn uint64 }
	var commits []commitAt
	var aborts []uint64
	for _, rec := range recs {
		switch rec.Type {
		case wal.RecCommit:
			commits = append(commits, commitAt{rec.TxnID, rec.LSN})
		case wal.RecAbort:
			aborts = append(aborts, rec.TxnID)
			delete(delta, rec.TxnID)
		case wal.RecHeapPut, wal.RecBlobState, wal.RecHeapDelete:
			delta[rec.TxnID] = append(delta[rec.TxnID], rec)
		default:
			// RecBegin, RecCheckpoint, RecBlobData, RecBlobDelta,
			// RecFreeExtent: control or primary-device-physical.
		}
	}
	// Aborted transactions never apply; drop their buffers up front.
	for _, txn := range aborts {
		delete(r.pending, txn)
	}

	fetch := r.fetcher(ctx)
	for _, c := range commits {
		// Ops buffered from earlier batches all precede this batch's.
		ops := append(append([]wal.Record(nil), r.pending[c.txn]...), delta[c.txn]...)
		if len(ops) > 0 { // read-only txns (or ops below a resync snapshot) skip
			if err := r.db.ApplyReplicated(ops, fetch); err != nil {
				r.preserve(delta)
				return fmt.Errorf("repl: apply txn %d (commit lsn %d): %w", c.txn, c.lsn, err)
			}
		}
		delete(r.pending, c.txn)
		delete(delta, c.txn)
		if c.lsn > r.applied.Load() {
			r.applied.Store(c.lsn)
		}
	}

	for txn, ops := range delta {
		r.pending[txn] = append(r.pending[txn], ops...)
	}
	return nil
}

// preserve, on a mid-batch apply failure, folds the failed batch's
// records at or below the applied horizon into the pending buffers: the
// retry pulls only records above the horizon, so anything below it that
// has not been applied would otherwise be lost. Records above the
// horizon are dropped — the retry re-delivers them.
func (r *Replica) preserve(delta map[uint64][]wal.Record) {
	applied := r.applied.Load()
	for txn, ops := range delta {
		for _, rec := range ops {
			if rec.LSN <= applied {
				r.pending[txn] = append(r.pending[txn], rec)
			}
		}
	}
}

// resync installs a full snapshot: create missing relations, overwrite
// every snapshotted tuple, and delete local tuples the snapshot does not
// contain. Applied in one replica transaction per relation batch to bound
// memory; the stream replay above the snapshot LSN repairs any tuple the
// snapshot captured mid-commit.
func (r *Replica) resync(ctx context.Context) error {
	snap, err := r.src.Snapshot(ctx)
	if err != nil {
		return err
	}
	r.resyncs.Add(1)
	r.pending = map[uint64][]wal.Record{}
	for _, rel := range snap.Rels {
		if _, err := r.db.Relation(rel); err != nil {
			if _, cerr := r.db.CreateRelation(rel); cerr != nil && !errors.Is(cerr, core.ErrRelationExists) {
				return cerr
			}
		}
	}
	keep := map[string]map[string]bool{}
	for _, e := range snap.Entries {
		if keep[e.Rel] == nil {
			keep[e.Rel] = map[string]bool{}
		}
		keep[e.Rel][string(e.Key)] = true
		if err := r.installEntry(ctx, e); err != nil {
			return fmt.Errorf("repl: resync %q/%q: %w", e.Rel, e.Key, err)
		}
	}
	// Drop local tuples the primary no longer has.
	for _, rel := range snap.Rels {
		var stale [][]byte
		tx := r.db.BeginCtx(ctx, nil)
		err := tx.Scan(rel, nil, func(key, _ []byte, _ *blob.State) bool {
			if !keep[rel][string(key)] {
				stale = append(stale, append([]byte(nil), key...))
			}
			return true
		})
		tx.Commit() // read-only
		if err != nil {
			return err
		}
		for _, key := range stale {
			tx := r.db.BeginCtx(ctx, nil)
			if err := tx.DeleteBlob(rel, key); err != nil && !errors.Is(err, core.ErrNotFound) {
				tx.Abort()
				return err
			}
			if err := tx.CommitWait(); err != nil {
				return err
			}
		}
	}
	if snap.LSN > r.applied.Load() {
		r.applied.Store(snap.LSN)
	}
	return nil
}

// installEntry writes one snapshot tuple, skipping BLOBs the replica
// already holds at the right ETag (the common resync case: only the tail
// diverged).
func (r *Replica) installEntry(ctx context.Context, e Entry) error {
	tx := r.db.BeginCtx(ctx, nil)
	if !e.Blob {
		if err := tx.Put(e.Rel, e.Key, e.Inline); err != nil {
			tx.Abort()
			return err
		}
		return tx.CommitWait()
	}
	if st, err := tx.BlobState(e.Rel, e.Key); err == nil && st.ETag() == e.ETag {
		return tx.Commit() // already identical
	}
	etag, rc, err := r.src.FetchBlob(ctx, e.Rel, e.Key)
	if errors.Is(err, core.ErrBlobVanished) {
		tx.Abort()
		return nil // deleted on the primary since the snapshot; replay fixes it
	}
	if err != nil {
		tx.Abort()
		return err
	}
	defer rc.Close()
	w, err := tx.CreateBlob(ctx, e.Rel, e.Key)
	if err != nil {
		tx.Abort()
		return err
	}
	if _, err := io.Copy(w, rc); err != nil {
		w.Abort()
		tx.Abort()
		return err
	}
	if err := w.Close(); err != nil {
		tx.Abort()
		return err
	}
	got, err := tx.BlobState(e.Rel, e.Key)
	if err != nil {
		tx.Abort()
		return err
	}
	if got.ETag() != etag {
		tx.Abort()
		return fmt.Errorf("installed etag %s, fetcher claimed %s", got.ETag(), etag)
	}
	return tx.CommitWait()
}

// fetcher adapts the source to core.BlobFetch.
func (r *Replica) fetcher(ctx context.Context) core.BlobFetch {
	return func(rel string, key []byte, _ *blob.State) (string, io.ReadCloser, error) {
		return r.src.FetchBlob(ctx, rel, key)
	}
}

// Run tails the source until ctx is cancelled or the replica is promoted,
// syncing every interval. Transient source errors are reported through
// onErr (nil: ignored) and retried on the next tick.
func (r *Replica) Run(ctx context.Context, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if _, err := r.Sync(ctx); err != nil {
			if errors.Is(err, ErrPromoted) {
				return
			}
			if onErr != nil {
				onErr(err)
			}
		}
	}
}

// Promote ends replication: the engine stops following the primary and is
// handed back for local writes. The applied LSN freezes at the replicated
// horizon — every acknowledged primary commit at or below it survives the
// failover; anything above it was never replicated and is lost with the
// primary (the documented bounded-staleness tail).
func (r *Replica) Promote() *core.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.promoted.Store(true)
	r.pending = map[uint64][]wal.Record{}
	return r.db
}
