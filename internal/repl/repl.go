// Package repl implements log-shipping read replication over the segmented
// WAL. A primary engine exposes its logical record stream through a Source
// (in-process for tests and the crash simulator, HTTP between processes);
// a Replica tails that stream into its own engine — own device, own WAL,
// own allocator — and serves reads at a bounded-staleness horizon.
//
// The protocol is LSN-based, built on the wal package's segment API:
//
//   - The replica pulls records strictly above its applied LSN. The
//     primary answers from its live segments (wal.Manager.ReadFrom) up to
//     its durable LSN — nothing unsynced ever leaves the primary, so a
//     primary crash can never roll back state a replica already serves.
//   - When the requested horizon has been truncated away (the primary
//     checkpointed and reclaimed those segments), the pull demands a
//     resync: the replica installs a full logical snapshot at the
//     snapshot's LSN and resumes tailing from there.
//   - BLOB content travels out of band: the logical stream carries Blob
//     States (extent maps + SHA-256), so the replica fetches content by
//     key and verifies the installed bytes hash to the ETag the source
//     claimed. See core.BlobFetch for the freshness rules.
//
// AppliedLSN is the replica's staleness contract: every primary
// transaction whose commit record is at or below it is fully applied, so
// for any key whose last committed update is at or below AppliedLSN the
// replica's ETag is byte-identical to the primary's. Promote ends
// replication and hands the engine over for writes — the failover path the
// crash simulator drives.
package repl

import (
	"context"
	"io"

	"blobdb/internal/wal"
)

// Pull is one batch of the primary's logical record stream.
type Pull struct {
	// Records holds every durable record with LSN in (after, Durable],
	// in LSN order. Empty when the replica is caught up.
	Records []wal.Record
	// Durable is the primary's durable-LSN horizon for this batch: the
	// replica's applied LSN after consuming Records.
	Durable uint64
	// Resync reports that `after` fell below the primary's truncation
	// horizon: the records needed are gone and the replica must install a
	// Snapshot before tailing again.
	Resync bool
}

// Entry is one tuple of a logical snapshot: either an inline value or a
// BLOB identified by its ETag (content is fetched separately).
type Entry struct {
	Rel    string
	Key    []byte
	Inline []byte // inline column value; nil for BLOBs
	Blob   bool
	ETag   string // BLOB content hash (blob.State.ETag)
	Size   uint64 // BLOB size in bytes
}

// Snapshot is a full logical image of the primary at LSN: replaying records
// above LSN on top of it reproduces the primary.
type Snapshot struct {
	LSN     uint64
	Rels    []string // every relation, including empty ones
	Entries []Entry
}

// Source is the replica's view of a primary. Implementations: EngineSource
// (same process) and HTTPSource (a blobserver primary's /repl/v1 API).
type Source interface {
	// Pull returns the durable records above after, or demands a resync.
	Pull(ctx context.Context, after uint64) (Pull, error)
	// FetchBlob returns the primary's current committed content for the
	// key and that content's ETag. A key with no committed BLOB content
	// reports core.ErrBlobVanished.
	FetchBlob(ctx context.Context, rel string, key []byte) (etag string, rc io.ReadCloser, err error)
	// Snapshot captures a full logical image for resync. The primary
	// should be commit-quiesced while the image is taken (EngineSource
	// holds the commit pipeline); tuples staged by transactions that
	// commit above the snapshot LSN are repaired by the record replay.
	Snapshot(ctx context.Context) (*Snapshot, error)
}
