package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sort"

	"blobdb/internal/blob"
	"blobdb/internal/core"
)

// EngineSource serves the replication protocol straight off an in-process
// primary engine — the transport the crash simulator's failover schedules
// and the unit tests use, and the reference semantics the HTTP transport
// mirrors.
type EngineSource struct {
	db *core.DB
}

// NewEngineSource wraps a primary engine.
func NewEngineSource(db *core.DB) *EngineSource { return &EngineSource{db: db} }

// Pull returns the durable records above after from the primary's live
// segments.
func (s *EngineSource) Pull(_ context.Context, after uint64) (Pull, error) {
	recs, durable, resync, err := s.db.WAL().ReadFrom(nil, after)
	if err != nil {
		return Pull{}, err
	}
	return Pull{Records: recs, Durable: durable, Resync: resync}, nil
}

// FetchBlob returns the primary's current committed content for the key.
func (s *EngineSource) FetchBlob(ctx context.Context, rel string, key []byte) (string, io.ReadCloser, error) {
	tx := s.db.BeginCtx(ctx, nil)
	defer tx.Commit() // read-only
	st, err := tx.BlobState(rel, key)
	if err != nil {
		if errors.Is(err, core.ErrNotFound) || errors.Is(err, core.ErrNotBlob) || errors.Is(err, core.ErrRelationNotFound) {
			return "", nil, core.ErrBlobVanished
		}
		return "", nil, err
	}
	content, err := tx.ReadBlobBytes(rel, key)
	if err != nil {
		return "", nil, err
	}
	return st.ETag(), io.NopCloser(bytes.NewReader(content)), nil
}

// Snapshot captures a full logical image. The commit pipeline is held
// while the image is taken so the snapshot LSN (the durable horizon at
// capture) covers every commit the scan can observe; in synchronous-commit
// configurations the caller must quiesce writers instead.
func (s *EngineSource) Snapshot(_ context.Context) (*Snapshot, error) {
	s.db.HoldCommits()
	defer s.db.ReleaseCommits()

	snap := &Snapshot{LSN: s.db.WAL().DurableLSN()}
	rels := s.db.Relations()
	sort.Strings(rels)
	snap.Rels = rels
	tx := s.db.Begin(nil)
	defer tx.Commit() // read-only
	for _, rel := range rels {
		err := tx.Scan(rel, nil, func(key, inline []byte, st *blob.State) bool {
			e := Entry{Rel: rel, Key: append([]byte(nil), key...)}
			if st != nil {
				e.Blob = true
				e.ETag = st.ETag()
				e.Size = st.Size
			} else {
				e.Inline = append([]byte(nil), inline...)
			}
			snap.Entries = append(snap.Entries, e)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return snap, nil
}
