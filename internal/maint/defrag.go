// Package maint houses online maintenance daemons that run against a live
// engine: today, the defragmenter. Maintenance is strictly best-effort and
// pace-limited — it must never hurt foreground traffic beyond its knobs —
// and every mutation rides a normal transaction, so crash consistency
// comes from the engine, not from this package.
package maint

import (
	"context"
	"expvar"
	"sync"
	"sync/atomic"
	"time"

	"blobdb/internal/core"
	"blobdb/internal/extent"
)

// Config paces the defragmenter.
type Config struct {
	// MinScore gates a round: relocation only starts when the allocator's
	// fragmentation score (dead fraction of the heap footprint) is at
	// least this. 0 means use the default.
	MinScore float64
	// MaxMoves caps relocations per round; each move is its own short
	// transaction, so this bounds row-lock pressure per round. 0: default.
	MaxMoves int
	// Interval is the background cadence of Run. 0: default.
	Interval time.Duration
	// Pause inserts a sleep between individual moves — the blunt pacing
	// knob for keeping foreground read latency flat during a round.
	Pause time.Duration
	// Logf, when set, receives one line per completed round.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MinScore <= 0 {
		c.MinScore = 0.15
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 64
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	return c
}

// Report summarizes one defragmentation round.
type Report struct {
	Before, After  extent.FragReport
	Planned        int    // relocation targets the planner proposed
	Moved          int    // extents actually relocated
	Skipped        int    // stale plans, shared sequences, no slot below
	ReclaimedPages uint64 // pages retracted from the high-water mark
}

// Defragmenter compacts a live engine's heap region: it relocates live,
// unshared extents into free slots at lower addresses (core.RelocateExtent
// — readers stay lock-free throughout) and retracts the allocator's
// high-water mark over the space that empties out at the top.
type Defragmenter struct {
	db  *core.DB
	cfg Config

	rounds    atomic.Uint64
	moves     atomic.Uint64
	skips     atomic.Uint64
	reclaimed atomic.Uint64
	errs      atomic.Uint64

	mu   sync.Mutex
	last Report
}

// New wires a defragmenter over db. Call RunOnce for a single round or Run
// for the background loop.
func New(db *core.DB, cfg Config) *Defragmenter {
	return &Defragmenter{db: db, cfg: cfg.withDefaults()}
}

// RunOnce executes one defragmentation round: score, plan, relocate up to
// MaxMoves extents (one short transaction each), drain the commit
// pipeline, tick the reclaimer so the vacated sources reach the free
// lists, and shrink the high-water mark. Returns the round's report; a nil
// error with Moved == 0 means the heap was already packed enough.
func (d *Defragmenter) RunOnce(ctx context.Context) (Report, error) {
	alloc := d.db.Allocator()
	rep := Report{Before: alloc.FragStats()}
	rep.After = rep.Before
	if rep.Before.Score < d.cfg.MinScore {
		return rep, nil
	}
	d.rounds.Add(1)

	targets := d.db.PlanRelocations(d.cfg.MaxMoves)
	rep.Planned = len(targets)
	for _, tgt := range targets {
		if err := ctx.Err(); err != nil {
			break
		}
		tx := d.db.BeginCtx(ctx, nil)
		moved, err := tx.RelocateExtent(tgt)
		if err != nil {
			tx.Abort()
			d.errs.Add(1)
			d.finishRound(&rep)
			return rep, err
		}
		if !moved {
			tx.Abort()
			rep.Skipped++
			d.skips.Add(1)
			continue
		}
		if err := tx.CommitWait(); err != nil {
			d.errs.Add(1)
			d.finishRound(&rep)
			return rep, err
		}
		rep.Moved++
		d.moves.Add(1)
		if d.cfg.Pause > 0 {
			time.Sleep(d.cfg.Pause)
		}
	}

	// The vacated sources sit in deferred-free batches until the epoch
	// horizon passes; drain in-flight commits, then tick so they reach
	// the allocator before the shrink.
	d.db.DrainCommits()
	d.db.ReclaimTick()
	rep.ReclaimedPages = alloc.ShrinkHWM()
	d.reclaimed.Add(rep.ReclaimedPages)
	d.finishRound(&rep)
	if d.cfg.Logf != nil {
		d.cfg.Logf("maint: defrag round: score %.3f -> %.3f, moved %d/%d (skipped %d), reclaimed %d pages",
			rep.Before.Score, rep.After.Score, rep.Moved, rep.Planned, rep.Skipped, rep.ReclaimedPages)
	}
	return rep, nil
}

func (d *Defragmenter) finishRound(rep *Report) {
	rep.After = d.db.Allocator().FragStats()
	d.mu.Lock()
	d.last = *rep
	d.mu.Unlock()
}

// Run loops RunOnce on the configured interval until ctx is cancelled.
// Errors are counted (and logged via Logf) but do not stop the loop: a
// transient commit failure should not end maintenance forever.
func (d *Defragmenter) Run(ctx context.Context) {
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := d.RunOnce(ctx); err != nil && d.cfg.Logf != nil {
				d.cfg.Logf("maint: defrag round failed: %v", err)
			}
		}
	}
}

// LastReport returns the most recent round's report.
func (d *Defragmenter) LastReport() Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Vars returns the defragmenter's progress counters as an expvar.Func
// value for a server's /debug/vars map.
func (d *Defragmenter) Vars() expvar.Var {
	return expvar.Func(func() any {
		last := d.LastReport()
		return map[string]any{
			"rounds":          d.rounds.Load(),
			"moved_extents":   d.moves.Load(),
			"skipped_targets": d.skips.Load(),
			"reclaimed_pages": d.reclaimed.Load(),
			"errors":          d.errs.Load(),
			"score":           d.db.Allocator().FragStats().Score,
			"last_round": map[string]any{
				"score_before":    last.Before.Score,
				"score_after":     last.After.Score,
				"planned":         last.Planned,
				"moved":           last.Moved,
				"skipped":         last.Skipped,
				"reclaimed_pages": last.ReclaimedPages,
			},
		}
	})
}
