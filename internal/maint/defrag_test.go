package maint

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"blobdb/internal/core"
	"blobdb/internal/storage"
)

const ps = storage.DefaultPageSize

func newTestDB(t *testing.T) *core.DB {
	t.Helper()
	dev := storage.NewMemDevice(ps, 1<<15, nil)
	db, err := core.New(dev,
		core.WithPoolPages(1<<12),
		core.WithLogPages(1<<11),
		core.WithCkptPages(1<<11))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func put(t *testing.T, db *core.DB, rel, key string, content []byte) {
	t.Helper()
	tx := db.Begin(nil)
	w, err := tx.CreateBlob(context.Background(), rel, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func del(t *testing.T, db *core.DB, rel, key string) {
	t.Helper()
	tx := db.Begin(nil)
	if err := tx.DeleteBlob(rel, []byte(key)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, db *core.DB, rel, key string) []byte {
	t.Helper()
	tx := db.Begin(nil)
	got, err := tx.ReadBlobBytes(rel, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	return got
}

// fragment interleaves puts and deletes so surviving blobs strand at high
// addresses with free holes below them. Returns the survivors' contents.
func fragment(t *testing.T, db *core.DB) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	db.CreateRelation("f")
	survivors := map[string][]byte{}
	keys := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		content := make([]byte, 100<<10+rng.Intn(200<<10))
		rng.Read(content)
		put(t, db, "f", key, content)
		keys = append(keys, key)
		survivors[key] = content
	}
	// Delete every other blob AFTER all have been placed: the freed
	// extents strand as holes below the surviving high-address ones.
	for i, key := range keys {
		if i%2 == 0 {
			del(t, db, "f", key)
			delete(survivors, key)
		}
	}
	return survivors
}

// TestDefragReducesScore is the defragmenter's core promise: on a
// fragmented heap, RunOnce strictly decreases the fragmentation score and
// every surviving blob stays byte-identical.
func TestDefragReducesScore(t *testing.T) {
	db := newTestDB(t)
	survivors := fragment(t, db)

	before := db.Allocator().FragStats()
	if before.Score <= 0 {
		t.Fatalf("workload produced no fragmentation: %+v", before)
	}
	d := New(db, Config{MinScore: 0.01, MaxMoves: 1000})
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved == 0 {
		t.Fatalf("no extents moved: %+v", rep)
	}
	if rep.After.Score >= rep.Before.Score {
		t.Errorf("score did not decrease: %.4f -> %.4f", rep.Before.Score, rep.After.Score)
	}
	if rep.ReclaimedPages == 0 {
		t.Errorf("no pages reclaimed from the high-water mark: %+v", rep)
	}
	for key, want := range survivors {
		if !bytes.Equal(read(t, db, "f", key), want) {
			t.Fatalf("blob %q corrupted by defragmentation", key)
		}
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger after defrag: %v", err)
	}
}

// TestDefragConvergesIdempotent runs rounds until the score stops moving
// and checks the gate keeps later rounds cheap (no moves planned).
func TestDefragConvergesIdempotent(t *testing.T) {
	db := newTestDB(t)
	fragment(t, db)
	d := New(db, Config{MinScore: 0.01, MaxMoves: 1000})
	var last float64 = 2
	for i := 0; i < 8; i++ {
		rep, err := d.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.After.Score > last {
			t.Fatalf("round %d increased score %.4f -> %.4f", i, last, rep.After.Score)
		}
		last = rep.After.Score
		if rep.Moved == 0 {
			return // converged
		}
	}
	// Convergence is not guaranteed to perfection (holes smaller than any
	// extent can persist), but rounds must stop moving things eventually.
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 0 {
		t.Errorf("still moving after 8 rounds: %+v", rep)
	}
}

// TestDefragSkipsSharedSequences deduplicated blobs are immovable: the
// planner must exclude them and a stale target must skip, never corrupt.
func TestDefragSkipsSharedSequences(t *testing.T) {
	db := newTestDB(t)
	db.CreateRelation("f")
	content := make([]byte, 500<<10)
	rand.New(rand.NewSource(5)).Read(content)
	put(t, db, "f", "x", content)
	put(t, db, "f", "y", content) // dedups against x

	d := New(db, Config{MinScore: 0.01, MaxMoves: 100})
	if _, err := d.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(t, db, "f", "x"), content) || !bytes.Equal(read(t, db, "f", "y"), content) {
		t.Fatal("shared blob corrupted by defrag")
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger: %v", err)
	}

	// Direct stale/shared target: RelocateExtent must report a skip.
	tx := db.Begin(nil)
	targets := db.PlanRelocations(1000)
	for _, tgt := range targets {
		if tgt.Rel == "f" && (string(tgt.Key) == "x" || string(tgt.Key) == "y") {
			t.Fatalf("planner proposed a shared sequence: %+v", tgt)
		}
	}
	moved, err := tx.RelocateExtent(core.RelocTarget{Rel: "f", Key: []byte("x"), Tier: 0, PID: 1 << 30})
	if err != nil || moved {
		t.Fatalf("stale relocate = %v, %v; want skip", moved, err)
	}
	tx.Abort()
}

// TestDefragSurvivesRecovery crashes right after a defrag round; recovery
// must produce the relocated layout with every blob intact.
func TestDefragSurvivesRecovery(t *testing.T) {
	dev := storage.NewMemDevice(ps, 1<<15, nil)
	opts := []core.Option{
		core.WithPoolPages(1 << 12),
		core.WithLogPages(1 << 11),
		core.WithCkptPages(1 << 11),
	}
	db, err := core.New(dev, opts...)
	if err != nil {
		t.Fatal(err)
	}
	survivors := fragment(t, db)
	d := New(db, Config{MinScore: 0.01, MaxMoves: 1000})
	rep, err := d.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved == 0 {
		t.Fatal("no moves; test is vacuous")
	}
	// Crash: abandon db, recover from the device.
	db2, _, err := core.RecoverDevice(dev, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range survivors {
		if !bytes.Equal(read(t, db2, "f", key), want) {
			t.Fatalf("blob %q lost after post-defrag crash", key)
		}
	}
	if err := db2.CheckLedger(); err != nil {
		t.Errorf("CheckLedger after recovery: %v", err)
	}
}
