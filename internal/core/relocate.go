package core

import (
	"fmt"
	"sort"

	"blobdb/internal/blob"
	"blobdb/internal/storage"
	"blobdb/internal/wal"
)

// Online extent relocation — the engine half of the defragmenter
// (internal/maint drives it; this file owns every invariant).
//
// Protocol per move, designed so a crash at ANY point loses nothing:
//
//  1. Lock the row (2PL): no writer can replace or delete the blob while
//     the move is in flight. Readers stay lock-free — they keep reading
//     the OLD extent from their state snapshot, which remains valid
//     because the old extent is freed through the epoch-deferred
//     reclaimer, never inline.
//  2. Re-read the state under the lock and verify the planned (tier, pid)
//     still matches; planning runs without locks and may be stale.
//  3. Skip shared extents: a deduplicated sequence has co-owners whose
//     tuples all embed the old PID, and a row lock on one key cannot
//     remap the others atomically.
//  4. Allocate the destination strictly BELOW the source (AllocExtentBelow
//     reuses free space only), pin the source, copy the used bytes, and
//     flush the copy to the device BEFORE staging anything. This inverts
//     the writer's §III-C order (state durable first, extents second) on
//     purpose: content is unchanged, so if the remap record never becomes
//     durable the old tuple still points at the old — untouched — extent,
//     and if it does become durable the new extent already holds valid
//     bytes. Either way SHA-256 validation passes and the key survives.
//     The flushed-but-never-committed copy is reclaimed by the allocator
//     rebuild at recovery (no tuple references it).
//  5. Stage the remapped Blob State as a normal RecBlobState tree write,
//     refresh the ordering and dedup indexes, queue the OLD extent on
//     t.frees (epoch-deferred, ledger-aware), and register the new extent
//     in a Pending so an abort returns it to the allocator.
type RelocTarget struct {
	Rel  string
	Key  []byte
	Tier int         // index into State.Extents
	PID  storage.PID // expected current extent address (stale-plan check)
}

// PlanRelocations scans every relation for tier extents worth moving down:
// unshared extents at the highest device addresses, which are the ones
// pinning the allocator's high-water mark up. Returns at most max targets,
// highest address first (moving those first frees the top of the region so
// ShrinkHWM can retract it). Planning takes no row locks; RelocateExtent
// re-validates under the lock.
func (db *DB) PlanRelocations(max int) []RelocTarget {
	if max <= 0 {
		return nil
	}
	var cands []RelocTarget
	for _, name := range db.Relations() {
		r, err := db.Relation(name)
		if err != nil {
			continue
		}
		r.mu.RLock()
		r.tree.Ascend(nil, func(k, v []byte) bool {
			tag, payload, err := decodeValue(v)
			if err != nil || tag != tagBlob {
				return true
			}
			st, err := blob.Decode(payload)
			if err != nil {
				return true
			}
			for i, pid := range st.Extents {
				cands = append(cands, RelocTarget{
					Rel: name, Key: append([]byte(nil), k...), Tier: i, PID: pid,
				})
			}
			return true
		})
		r.mu.RUnlock()
	}
	// Shared sequences are immovable (invariant 3); drop them at plan time
	// so the mover does not waste transactions on guaranteed skips.
	db.dedup.mu.Lock()
	kept := cands[:0]
	for _, c := range cands {
		if _, shared := db.dedup.ledger[c.PID]; !shared {
			kept = append(kept, c)
		}
	}
	db.dedup.mu.Unlock()
	sort.Slice(kept, func(i, j int) bool { return kept[i].PID > kept[j].PID })
	if len(kept) > max {
		kept = kept[:max]
	}
	return kept
}

// RelocateExtent moves one tier extent of one blob to a lower device
// address. It returns (false, nil) when the move is not possible or no
// longer useful — the plan went stale, the sequence is shared, or no free
// slot exists below the source — so the defragmenter can treat skips as
// routine. The move is part of the transaction: it commits (and becomes
// durable) or aborts (and the copy is discarded) with everything else in t.
func (t *Txn) RelocateExtent(tgt RelocTarget) (bool, error) {
	if err := t.check(); err != nil {
		return false, err
	}
	r, err := t.db.Relation(tgt.Rel)
	if err != nil {
		return false, err
	}
	t.lock(tgt.Rel, tgt.Key)

	// Re-read under the row lock; the plan may predate a writer.
	r.mu.RLock()
	v, ok := r.tree.Get(tgt.Key)
	r.mu.RUnlock()
	if !ok {
		return false, nil
	}
	tag, payload, err := decodeValue(v)
	if err != nil || tag != tagBlob {
		return false, nil
	}
	st, err := blob.Decode(payload)
	if err != nil {
		return false, fmt.Errorf("core: relocate: stored blob state corrupt: %w", err)
	}
	if tgt.Tier >= len(st.Extents) || st.Extents[tgt.Tier] != tgt.PID {
		return false, nil // stale plan
	}
	db := t.db
	db.dedup.mu.Lock()
	_, shared := db.dedup.ledger[tgt.PID]
	db.dedup.mu.Unlock()
	if shared {
		return false, nil
	}

	tiers := db.alloc.Tiers()
	npages := tiers.Size(tgt.Tier)
	ps := db.pool.PageSize()
	// Bytes of this extent actually covered by the blob (the last extent
	// of a sequence may be a partially filled growth frontier).
	used := int(npages) * ps
	if covered := st.Size - tiers.Cum(tgt.Tier-1)*uint64(ps); covered < uint64(used) {
		used = int(covered)
	}
	if used <= 0 {
		return false, nil // degenerate state; nothing to move
	}

	newPID, ok := db.alloc.AllocExtentBelow(tgt.Tier, tgt.PID)
	if !ok {
		return false, nil
	}
	undoAlloc := func() {
		db.pool.Drop(newPID)
		db.alloc.FreeExtent(tgt.Tier, newPID)
	}

	old, err := db.pool.FixExtent(t.meter, tgt.PID, int(npages))
	if err != nil {
		undoAlloc()
		return false, fmt.Errorf("core: relocate: fix source extent %d: %w", tgt.PID, err)
	}
	clone, err := db.pool.CreateExtent(t.meter, newPID, int(npages))
	if err != nil {
		old.Release()
		undoAlloc()
		return false, fmt.Errorf("core: relocate: create extent %d: %w", newPID, err)
	}
	buf := make([]byte, 64<<10)
	for off := 0; off < used; {
		c := used - off
		if c > len(buf) {
			c = len(buf)
		}
		old.ReadAt(buf[:c], off)
		clone.WriteAt(buf[:c], off)
		off += c
	}
	clone.MarkDirty(0, (used+ps-1)/ps)
	old.Release()
	// Invariant 4: the copy is durable before the remap record can be.
	if err := db.pool.FlushExtent(t.meter, clone); err != nil {
		clone.Release()
		undoAlloc()
		return false, fmt.Errorf("core: relocate: flush extent %d: %w", newPID, err)
	}
	clone.Release()

	// The sequence changes identity: retire the old content-index entry
	// (the remapped state re-registers at commit via t.regs).
	db.dedupOnMutate(st)

	newSt := st.Clone()
	newSt.Extents = append([]storage.PID(nil), st.Extents...)
	newSt.Extents[tgt.Tier] = newPID

	t.updateIndexesOnDelete(r, tgt.Key, st)
	if err := t.stageWrite(r, tgt.Key, append([]byte{tagBlob}, newSt.Encode()...), wal.RecBlobState); err != nil {
		return false, err
	}
	t.updateIndexesOnPutState(r, tgt.Key, newSt)
	t.regs = append(t.regs, newSt)
	// Abort path: Discard(News) returns the copy to the allocator.
	t.pendings = append(t.pendings, db.blobs.NewPending(nil, []blob.FreeSpec{{Tier: tgt.Tier, PID: newPID}}))
	// Commit path: the old extent frees through the epoch-deferred,
	// ledger-aware reclaimer once no reader can hold its snapshot.
	t.frees = append(t.frees, blob.FreeSpec{Tier: tgt.Tier, PID: tgt.PID})
	return true, nil
}
