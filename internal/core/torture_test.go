package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"blobdb/internal/blob"
)

// TestTortureAgainstReference drives a long random mix of puts, grows,
// updates, deletes, aborts, checkpoints, and crash-recoveries against an
// in-memory reference map. After every recovery the database must contain
// exactly the reference contents: committed data survives any crash point,
// uncommitted and torn data never does.
func TestTortureAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("torture run is not short")
	}
	rng := rand.New(rand.NewSource(2024))
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	ref := map[string][]byte{}

	randContent := func() []byte {
		b := make([]byte, 1+rng.Intn(40<<10))
		rng.Read(b)
		return b
	}
	keys := func() []string {
		out := make([]string, 0, len(ref))
		for k := range ref {
			out = append(out, k)
		}
		return out
	}
	pick := func() (string, bool) {
		ks := keys()
		if len(ks) == 0 {
			return "", false
		}
		return ks[rng.Intn(len(ks))], true
	}

	verify := func(step int) {
		t.Helper()
		tx := db.Begin(nil)
		defer tx.Commit()
		seen := 0
		err := tx.Scan("r", nil, func(k, inline []byte, st *blob.State) bool {
			seen++
			want, ok := ref[string(k)]
			if !ok {
				t.Fatalf("step %d: phantom key %q", step, k)
			}
			if st == nil {
				t.Fatalf("step %d: %q stored inline", step, k)
			}
			if st.Size != uint64(len(want)) || st.SHA256 != sha256.Sum256(want) {
				t.Fatalf("step %d: %q state mismatch", step, k)
			}
			return true
		})
		if err != nil {
			t.Fatalf("step %d: scan: %v", step, err)
		}
		if seen != len(ref) {
			t.Fatalf("step %d: db has %d keys, reference has %d", step, seen, len(ref))
		}
		// Deep-verify a random sample.
		for i := 0; i < 5; i++ {
			if k, ok := pick(); ok {
				got, err := tx.ReadBlobBytes("r", []byte(k))
				if err != nil || !bytes.Equal(got, ref[k]) {
					t.Fatalf("step %d: content of %q diverged: %v", step, k, err)
				}
			}
		}
	}

	var trail []string
	note := func(f string, args ...any) {
		trail = append(trail, fmt.Sprintf(f, args...))
		if len(trail) > 15 {
			trail = trail[1:]
		}
	}
	defer func() {
		if t.Failed() {
			for _, l := range trail {
				t.Log(l)
			}
		}
	}()
	const steps = 800
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 35: // put (insert or replace), committed or aborted
			key := fmt.Sprintf("k%03d", rng.Intn(60))
			content := randContent()
			note("step %d put %s %dB", step, key, len(content))
			tx := db.Begin(nil)
			if err := tx.PutBlob("r", []byte(key), content); err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				note("  abort")
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			} else {
				mustCommit(t, tx)
				ref[key] = content
			}
		case op < 50: // grow
			key, ok := pick()
			if !ok {
				continue
			}
			extra := randContent()
			note("step %d grow %s +%dB", step, key, len(extra))
			tx := db.Begin(nil)
			if err := tx.GrowBlob("r", []byte(key), extra); err != nil {
				t.Fatalf("step %d: grow: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				tx.Abort()
			} else {
				mustCommit(t, tx)
				ref[key] = append(append([]byte(nil), ref[key]...), extra...)
			}
		case op < 62: // update (random scheme)
			key, ok := pick()
			if !ok || len(ref[key]) == 0 {
				continue
			}
			n := 1 + rng.Intn(len(ref[key]))
			off := rng.Intn(len(ref[key]) - n + 1)
			patch := make([]byte, n)
			rng.Read(patch)
			note("step %d update %s off=%d n=%d", step, key, off, n)
			tx := db.Begin(nil)
			if err := tx.UpdateBlob("r", []byte(key), uint64(off), patch, blob.UpdateScheme(rng.Intn(3))); err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				tx.Abort()
			} else {
				mustCommit(t, tx)
				nv := append([]byte(nil), ref[key]...)
				copy(nv[off:], patch)
				ref[key] = nv
			}
		case op < 74: // delete
			key, ok := pick()
			if !ok {
				continue
			}
			note("step %d delete %s", step, key)
			tx := db.Begin(nil)
			if err := tx.DeleteBlob("r", []byte(key)); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				tx.Abort()
			} else {
				mustCommit(t, tx)
				delete(ref, key)
			}
		case op < 80: // torn transaction: WAL durable, extents lost
			key := fmt.Sprintf("k%03d", rng.Intn(60))
			note("step %d torn-put %s", step, key)
			tx := db.Begin(nil)
			if err := tx.PutBlob("r", []byte(key), randContent()); err != nil {
				t.Fatal(err)
			}
			if err := CrashBeforeExtentFlush(tx); err != nil {
				t.Fatal(err)
			}
			// Crash NOW: the torn state is in the WAL; recover.
			db2, _, err := Recover(o, nil)
			if err != nil {
				t.Fatalf("step %d: recover after torn txn: %v", step, err)
			}
			db = db2
			verify(step)
		case op < 86: // checkpoint
			note("step %d checkpoint", step)
			if err := db.WAL().Checkpoint(nil); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		case op < 95: // clean crash + recovery
			note("step %d recover", step)
			db2, _, err := Recover(o, nil)
			if err != nil {
				t.Fatalf("step %d: recover: %v", step, err)
			}
			db = db2
			verify(step)
		default: // read a missing key
			tx := db.Begin(nil)
			if _, err := tx.ReadBlobBytes("r", []byte("never-existed")); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("step %d: phantom read: %v", step, err)
			}
			tx.Commit()
		}
		if step%100 == 99 {
			verify(step)
		}
	}
	verify(steps)
	// Final sanity: allocator live pages match the reference exactly after
	// one more recovery (no leaks across the whole history).
	db2, _, err := Recover(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	db = db2
	verify(steps + 1)
	var wantPages uint64
	tiers := db.Allocator().Tiers()
	tx := db.Begin(nil)
	tx.Scan("r", nil, func(k, inline []byte, st *blob.State) bool {
		wantPages += st.TotalPages(tiers)
		return true
	})
	tx.Commit()
	if got := db.Allocator().Stats().LivePages; got != wantPages {
		t.Errorf("allocator LivePages = %d, blobs own %d (leak or double-free)", got, wantPages)
	}
}
