package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"blobdb/internal/blob"
	"blobdb/internal/crashsim/refmodel"
)

// tortureSeed seeds the torture run; every failure prints the replay
// invocation so any sighting reproduces exactly.
var tortureSeed = flag.Int64("torture-seed", 2024, "seed for TestTortureAgainstReference")

// TestTortureAgainstReference drives a long random mix of puts, streaming
// creates and appends, grows, updates, deletes, aborts (including
// mid-stream), checkpoints, and crash-recoveries against the shared
// reference model (internal/crashsim/refmodel). After every recovery the
// database must contain exactly the reference contents: committed data
// survives any crash point, uncommitted and torn data never does.
func TestTortureAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("torture run is not short")
	}
	seed := *tortureSeed
	defer func() {
		if t.Failed() {
			t.Logf("replay: go test ./internal/core -run TestTortureAgainstReference -torture-seed=%d", seed)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	model := refmodel.New()

	randContent := func() []byte {
		b := make([]byte, 1+rng.Intn(40<<10))
		rng.Read(b)
		return b
	}
	pick := func() (string, bool) {
		// Keys() includes deleted keys; only committed ones are live.
		ks := make([]string, 0, len(model.Keys()))
		for _, k := range model.Keys() {
			if _, ok := model.Committed(k); ok {
				ks = append(ks, k)
			}
		}
		if len(ks) == 0 {
			return "", false
		}
		return ks[rng.Intn(len(ks))], true
	}
	committed := func(k string) []byte {
		v, ok := model.Committed(k)
		if !ok {
			t.Fatalf("model has no committed value for %q", k)
		}
		return v
	}

	verify := func(step int) {
		t.Helper()
		tx := db.Begin(nil)
		defer tx.Commit()
		seen := 0
		err := tx.Scan("r", nil, func(k, inline []byte, st *blob.State) bool {
			seen++
			want, ok := model.Committed(string(k))
			if !ok {
				t.Fatalf("step %d: phantom key %q", step, k)
			}
			if st == nil {
				t.Fatalf("step %d: %q stored inline", step, k)
			}
			if st.Size != uint64(len(want)) || st.SHA256 != sha256.Sum256(want) {
				t.Fatalf("step %d: %q state mismatch", step, k)
			}
			return true
		})
		if err != nil {
			t.Fatalf("step %d: scan: %v", step, err)
		}
		if seen != model.Len() {
			t.Fatalf("step %d: db has %d keys, reference has %d", step, seen, model.Len())
		}
		// Deep-verify a random sample.
		for i := 0; i < 5; i++ {
			if k, ok := pick(); ok {
				got, err := tx.ReadBlobBytes("r", []byte(k))
				if err != nil || !bytes.Equal(got, committed(k)) {
					t.Fatalf("step %d: content of %q diverged: %v", step, k, err)
				}
			}
		}
	}

	// stream pushes content through w in random-sized chunks, stopping
	// after roughly frac of the bytes when frac < 1.
	stream := func(w *blob.Writer, content []byte, frac float64) error {
		limit := int(float64(len(content)) * frac)
		for off := 0; off < limit; {
			n := 1 + rng.Intn(8<<10)
			if off+n > limit {
				n = limit - off
			}
			if _, err := w.Write(content[off : off+n]); err != nil {
				return err
			}
			off += n
		}
		return nil
	}

	var trail []string
	note := func(f string, args ...any) {
		trail = append(trail, fmt.Sprintf(f, args...))
		if len(trail) > 15 {
			trail = trail[1:]
		}
	}
	defer func() {
		if t.Failed() {
			for _, l := range trail {
				t.Log(l)
			}
		}
	}()
	const steps = 800
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 25: // put (insert or replace), committed or aborted
			key := fmt.Sprintf("k%03d", rng.Intn(60))
			content := randContent()
			note("step %d put %s %dB", step, key, len(content))
			tx := db.Begin(nil)
			if err := putBlob(tx, "r", []byte(key), content); err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				note("  abort")
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			} else {
				mustCommit(t, tx)
				model.Commit(key, content)
			}
		case op < 35: // streaming create: commit, mid-stream abort, or mid-stream crash
			key := fmt.Sprintf("k%03d", rng.Intn(60))
			content := randContent()
			tx := db.Begin(nil)
			w, err := tx.CreateBlob(nil, "r", []byte(key))
			if err != nil {
				t.Fatalf("step %d: create: %v", step, err)
			}
			switch fate := rng.Intn(5); {
			case fate == 0: // abort mid-stream: partial extents freed, nothing staged
				note("step %d stream-put %s %dB abort-midstream", step, key, len(content))
				if err := stream(w, content, 0.5); err != nil {
					t.Fatalf("step %d: stream: %v", step, err)
				}
				w.Abort()
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			case fate == 1: // crash mid-stream: recovery must roll the txn back
				note("step %d stream-put %s %dB crash-midstream", step, key, len(content))
				if err := stream(w, content, 0.5); err != nil {
					t.Fatalf("step %d: stream: %v", step, err)
				}
				// Quiesce the background flusher before recovery reads the
				// shared device; the partially flushed extents stay on disk
				// with no commit record, so recovery discards them.
				w.Abort()
				db2, _, err := recoverDB(o, nil)
				if err != nil {
					t.Fatalf("step %d: recover mid-stream: %v", step, err)
				}
				db = db2
				verify(step)
			default:
				note("step %d stream-put %s %dB", step, key, len(content))
				if err := stream(w, content, 1); err != nil {
					t.Fatalf("step %d: stream: %v", step, err)
				}
				if err := w.Close(); err != nil {
					t.Fatalf("step %d: close: %v", step, err)
				}
				mustCommit(t, tx)
				model.Commit(key, content)
			}
		case op < 45: // streaming append (resumable SHA), committed or aborted
			key, ok := pick()
			if !ok {
				continue
			}
			extra := randContent()
			tx := db.Begin(nil)
			w, err := tx.AppendBlob(nil, "r", []byte(key))
			if err != nil {
				t.Fatalf("step %d: append: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				note("step %d stream-append %s +%dB abort-midstream", step, key, len(extra))
				if err := stream(w, extra, 0.5); err != nil {
					t.Fatalf("step %d: stream: %v", step, err)
				}
				w.Abort()
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			} else {
				note("step %d stream-append %s +%dB", step, key, len(extra))
				if err := stream(w, extra, 1); err != nil {
					t.Fatalf("step %d: stream: %v", step, err)
				}
				if err := w.Close(); err != nil {
					t.Fatalf("step %d: close: %v", step, err)
				}
				mustCommit(t, tx)
				model.Commit(key, append(append([]byte(nil), committed(key)...), extra...))
			}
		case op < 52: // grow
			key, ok := pick()
			if !ok {
				continue
			}
			extra := randContent()
			note("step %d grow %s +%dB", step, key, len(extra))
			tx := db.Begin(nil)
			if err := growBlob(tx, "r", []byte(key), extra); err != nil {
				t.Fatalf("step %d: grow: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				tx.Abort()
			} else {
				mustCommit(t, tx)
				model.Commit(key, append(append([]byte(nil), committed(key)...), extra...))
			}
		case op < 62: // update (random scheme)
			key, ok := pick()
			if !ok || len(committed(key)) == 0 {
				continue
			}
			old := committed(key)
			n := 1 + rng.Intn(len(old))
			off := rng.Intn(len(old) - n + 1)
			patch := make([]byte, n)
			rng.Read(patch)
			note("step %d update %s off=%d n=%d", step, key, off, n)
			tx := db.Begin(nil)
			if err := tx.UpdateBlob("r", []byte(key), uint64(off), patch, blob.UpdateScheme(rng.Intn(3))); err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				tx.Abort()
			} else {
				mustCommit(t, tx)
				nv := append([]byte(nil), old...)
				copy(nv[off:], patch)
				model.Commit(key, nv)
			}
		case op < 74: // delete
			key, ok := pick()
			if !ok {
				continue
			}
			note("step %d delete %s", step, key)
			tx := db.Begin(nil)
			if err := tx.DeleteBlob("r", []byte(key)); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			if rng.Intn(5) == 0 {
				tx.Abort()
			} else {
				mustCommit(t, tx)
				model.Delete(key)
			}
		case op < 80: // torn transaction: WAL durable, extents lost
			key := fmt.Sprintf("k%03d", rng.Intn(60))
			if rng.Intn(2) == 0 {
				// Buffered put: extents never reach the device, so §III-C
				// validation fails the txn and the pre-image survives.
				note("step %d torn-put %s", step, key)
				tx := db.Begin(nil)
				if err := putBlob(tx, "r", []byte(key), randContent()); err != nil {
					t.Fatal(err)
				}
				if err := CrashBeforeExtentFlush(tx); err != nil {
					t.Fatal(err)
				}
			} else {
				// Streaming put: completed extents flush DURING the write and
				// Close drains the flusher, so even "crashing" before the
				// commit-time extent flush leaves the content on the device —
				// recovery validates the SHA and keeps the blob.
				content := randContent()
				note("step %d torn-stream-put %s", step, key)
				tx := db.Begin(nil)
				w, err := tx.CreateBlob(nil, "r", []byte(key))
				if err != nil {
					t.Fatal(err)
				}
				if err := stream(w, content, 1); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				if err := CrashBeforeExtentFlush(tx); err != nil {
					t.Fatal(err)
				}
				model.Commit(key, content)
			}
			// Crash NOW: the torn state is in the WAL; recover.
			db2, _, err := recoverDB(o, nil)
			if err != nil {
				t.Fatalf("step %d: recover after torn txn: %v", step, err)
			}
			db = db2
			verify(step)
		case op < 86: // checkpoint
			note("step %d checkpoint", step)
			if err := db.WAL().Checkpoint(nil); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		case op < 95: // clean crash + recovery
			note("step %d recover", step)
			db2, _, err := recoverDB(o, nil)
			if err != nil {
				t.Fatalf("step %d: recover: %v", step, err)
			}
			db = db2
			verify(step)
		default: // read a missing key
			tx := db.Begin(nil)
			if _, err := tx.ReadBlobBytes("r", []byte("never-existed")); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("step %d: phantom read: %v", step, err)
			}
			tx.Commit()
		}
		if step%100 == 99 {
			verify(step)
		}
	}
	verify(steps)
	// Final sanity: allocator live pages match the reference exactly after
	// one more recovery (no leaks across the whole history).
	db2, _, err := recoverDB(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	db = db2
	verify(steps + 1)
	var wantPages uint64
	tiers := db.Allocator().Tiers()
	tx := db.Begin(nil)
	tx.Scan("r", nil, func(k, inline []byte, st *blob.State) bool {
		wantPages += st.TotalPages(tiers)
		return true
	})
	tx.Commit()
	if got := db.Allocator().Stats().LivePages; got != wantPages {
		t.Errorf("allocator LivePages = %d, blobs own %d (leak or double-free)", got, wantPages)
	}
}
