package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"blobdb/internal/blob"
	"blobdb/internal/storage"
)

// crashEnv builds a DB, runs setup, then "crashes" by recovering a fresh DB
// over the same device (the old DB object is simply abandoned, like a dead
// process: unflushed WAL buffers and the buffer pool vanish).
func crashAndRecover(t *testing.T, o options) (*DB, *RecoveryReport) {
	t.Helper()
	db, rep, err := recoverDB(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, rep
}

func TestRecoverEmptyDevice(t *testing.T) {
	o := testOpts()
	db, rep := crashAndRecover(t, o)
	if rep.FromCheckpoint || rep.CommittedTxns != 0 {
		t.Errorf("empty recovery report = %+v", rep)
	}
	if len(db.Relations()) != 0 {
		t.Error("empty device produced relations")
	}
}

func TestRecoverCommittedBlobSurvives(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("image")
	content := bytes.Repeat([]byte{0xAB}, 150<<10)
	tx := db.Begin(nil)
	putBlob(tx, "image", []byte("k"), content)
	mustCommit(t, tx)
	// Crash. The committed blob's state is in the WAL and its extents were
	// flushed at commit.
	db2, rep := crashAndRecover(t, o)
	if rep.CommittedTxns != 1 || rep.ValidatedBlobs != 1 || rep.FailedBlobs != 0 {
		t.Errorf("report = %+v", rep)
	}
	tx2 := db2.Begin(nil)
	got, err := tx2.ReadBlobBytes("image", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("committed blob lost after crash")
	}
	tx2.Commit()
}

func TestRecoverUncommittedTxnVanishes(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("ghost"), []byte("never committed"))
	// Crash before Commit: WAL buffer never flushed.
	db2, rep := crashAndRecover(t, o)
	if rep.CommittedTxns != 0 {
		t.Errorf("report = %+v", rep)
	}
	if _, err := db2.Relation("r"); !errors.Is(err, ErrNoRelation) {
		// The relation may not even exist post-crash (no committed records).
		tx2 := db2.Begin(nil)
		if _, err := tx2.ReadBlobBytes("r", []byte("ghost")); err == nil {
			t.Error("uncommitted blob visible after crash")
		}
		tx2.Commit()
	}
	_ = tx
}

// TestRecoverBlobStateDurableButExtentsLost is the paper's central recovery
// scenario (§III-C): the WAL (Blob State) is durable but the crash happened
// before the extents were flushed. The SHA-256 validation must fail the
// transaction and remove the tuple.
func TestRecoverBlobStateDurableButExtentsLost(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")

	content := bytes.Repeat([]byte{0x5C}, 80<<10)
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("torn"), content); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash between WAL fsync and extent flush: make the WAL
	// durable (including the commit record) but never flush the extents.
	if err := CrashBeforeExtentFlush(tx); err != nil {
		t.Fatal(err)
	}
	// Extents are NOT flushed. Crash.
	db2, rep := crashAndRecover(t, o)
	if rep.FailedBlobs != 1 {
		t.Errorf("report = %+v; want 1 failed blob", rep)
	}
	tx2 := db2.Begin(nil)
	if _, err := tx2.ReadBlobBytes("r", []byte("torn")); err == nil {
		t.Error("torn blob visible after recovery")
	}
	tx2.Commit()
	// The failed blob's extents must be reusable, not leaked.
	if live := db2.Allocator().Stats().LivePages; live != 0 {
		t.Errorf("LivePages = %d after failed-blob recovery, want 0", live)
	}
}

func TestRecoverMixedCommittedAndTorn(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	good := bytes.Repeat([]byte{1}, 60<<10)
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("good"), good)
	mustCommit(t, tx)

	tx2 := db.Begin(nil)
	putBlob(tx2, "r", []byte("torn"), bytes.Repeat([]byte{2}, 60<<10))
	if err := CrashBeforeExtentFlush(tx2); err != nil {
		t.Fatal(err)
	}
	// crash without extent flush for txn 2

	db2, rep := crashAndRecover(t, o)
	if rep.ValidatedBlobs != 1 || rep.FailedBlobs != 1 {
		t.Errorf("report = %+v", rep)
	}
	tx3 := db2.Begin(nil)
	got, err := tx3.ReadBlobBytes("r", []byte("good"))
	if err != nil || !bytes.Equal(got, good) {
		t.Error("good blob lost")
	}
	if _, err := tx3.ReadBlobBytes("r", []byte("torn")); err == nil {
		t.Error("torn blob survived")
	}
	tx3.Commit()
}

func TestRecoverAfterCheckpoint(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	pre := bytes.Repeat([]byte{3}, 40<<10)
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("pre-ckpt"), pre)
	mustCommit(t, tx)
	if err := db.WAL().Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	post := bytes.Repeat([]byte{4}, 40<<10)
	tx2 := db.Begin(nil)
	putBlob(tx2, "r", []byte("post-ckpt"), post)
	mustCommit(t, tx2)

	db2, rep := crashAndRecover(t, o)
	if !rep.FromCheckpoint {
		t.Error("recovery ignored the checkpoint")
	}
	tx3 := db2.Begin(nil)
	for name, want := range map[string][]byte{"pre-ckpt": pre, "post-ckpt": post} {
		got, err := tx3.ReadBlobBytes("r", []byte(name))
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("%s lost after checkpointed recovery: %v", name, err)
		}
	}
	tx3.Commit()
}

func TestRecoverDeleteSurvives(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("k"), []byte("to be deleted"))
	mustCommit(t, tx)
	tx2 := db.Begin(nil)
	tx2.DeleteBlob("r", []byte("k"))
	mustCommit(t, tx2)

	db2, _ := crashAndRecover(t, o)
	tx3 := db2.Begin(nil)
	if _, err := tx3.ReadBlobBytes("r", []byte("k")); err == nil {
		t.Error("deleted blob resurrected by recovery")
	}
	tx3.Commit()
}

func TestRecoverIdempotent(t *testing.T) {
	// Recovering twice must give the same state (redo is idempotent).
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	for i := 0; i < 5; i++ {
		tx := db.Begin(nil)
		putBlob(tx, "r", []byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 10<<10))
		mustCommit(t, tx)
	}
	db2, rep1 := crashAndRecover(t, o)
	_ = db2
	db3, rep2 := crashAndRecover(t, o)
	// The second recovery starts from the first one's checkpoint, so the
	// counters differ; what must match is the surviving data.
	if rep1.FailedBlobs != 0 || rep2.FailedBlobs != 0 {
		t.Errorf("reports show failures: %+v vs %+v", rep1, rep2)
	}
	tx := db3.Begin(nil)
	n := 0
	tx.Scan("r", nil, func(k, v []byte, st *blob.State) bool { n++; return true })
	tx.Commit()
	if n != 5 {
		t.Errorf("recovered %d tuples, want 5", n)
	}
}

func TestRecoverManyRandomCrashPoints(t *testing.T) {
	// Failure-injection sweep: commit K transactions, leave one in each of
	// several torn states, recover, and check exactly the committed ones
	// survive.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		o := testOpts()
		db := openTest(t, o)
		db.CreateRelation("r")
		want := map[string][]byte{}
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("t%d-k%d", trial, i)
			content := make([]byte, 1+rng.Intn(50<<10))
			rng.Read(content)
			tx := db.Begin(nil)
			if err := putBlob(tx, "r", []byte(key), content); err != nil {
				t.Fatal(err)
			}
			switch rng.Intn(3) {
			case 0: // committed
				mustCommit(t, tx)
				want[key] = content
			case 1: // WAL durable, extents lost
				CrashBeforeExtentFlush(tx)
			case 2: // nothing durable
				tx.done = true
			}
		}
		db2, _ := crashAndRecover(t, o)
		tx := db2.Begin(nil)
		got := map[string]bool{}
		tx.Scan("r", nil, func(k, v []byte, st *blob.State) bool {
			got[string(k)] = true
			return true
		})
		for key, content := range want {
			b, err := tx.ReadBlobBytes("r", []byte(key))
			if err != nil || !bytes.Equal(b, content) {
				t.Errorf("trial %d: committed %s lost", trial, key)
			}
			delete(got, key)
		}
		// Note: a "WAL durable, extents lost" blob whose content happens to
		// be all zeros could validate against zeroed device pages only if
		// the hash matched — it cannot, since contents are random.
		for k := range got {
			t.Errorf("trial %d: unexpected survivor %s", trial, k)
		}
		tx.Commit()
	}
}

var _ = storage.DefaultPageSize
