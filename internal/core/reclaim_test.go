package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestDeferredFreesBlockOnActiveReader pins the reclaimer's horizon rule:
// a transaction that captured a Blob State before an overwrite keeps the
// old extents resident and unrecycled until it ends, and the frees land
// as soon as it does.
func TestDeferredFreesBlockOnActiveReader(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAA}, 3*ps)
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), old); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	reader := db.Begin(nil)
	st, err := reader.BlobState("r", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}

	tx = db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), bytes.Repeat([]byte{0xBB}, 3*ps)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	if db.ReclaimPending() == 0 {
		t.Fatal("overwrite frees applied while a pre-overwrite reader is active")
	}
	// The stale snapshot must still read the complete old content.
	got, err := db.blobs.ReadAll(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("stale snapshot read does not match the pre-overwrite content")
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := db.ReclaimPending(); n != 0 {
		t.Fatalf("reclaim pending = %d after the last pre-overwrite txn ended, want 0", n)
	}
}

// TestDeferredFreesAbortPath: a reader that aborts also releases the
// reclamation horizon.
func TestDeferredFreesAbortPath(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), bytes.Repeat([]byte{1}, 2*ps)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	reader := db.Begin(nil)
	if _, err := reader.BlobState("r", []byte("k")); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin(nil)
	if err := tx.DeleteBlob("r", []byte("k")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if db.ReclaimPending() == 0 {
		t.Fatal("delete frees applied under an active reader")
	}
	if err := reader.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := db.ReclaimPending(); n != 0 {
		t.Fatalf("reclaim pending = %d after reader abort, want 0", n)
	}
}

// TestConcurrentReadersOverwriteNoTornReads hammers the lock-free read
// path while a writer replaces the blob — the schedule that used to
// panic the pool with "Drop of pinned extent" once the submission queue
// added yield points to the commit path. Every read must observe one
// complete version, never a mix, and no pinned extent may be dropped.
func TestConcurrentReadersOverwriteNoTornReads(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	versions := make([][]byte, 4)
	for v := range versions {
		versions[v] = bytes.Repeat([]byte{byte('A' + v)}, 5*ps/2)
	}
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), versions[0]); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx := db.Begin(nil)
				data, err := rtx.ReadBlobBytes("r", []byte("k"))
				if err != nil {
					rtx.Abort()
					errCh <- err
					return
				}
				for _, b := range data {
					if b != data[0] {
						rtx.Abort()
						errCh <- fmt.Errorf("torn read: %c vs %c", data[0], b)
						return
					}
				}
				rtx.Commit()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for v := 1; v < len(versions)*8; v++ {
			wtx := db.Begin(nil)
			if err := putBlob(wtx, "r", []byte("k"), versions[v%len(versions)]); err != nil {
				errCh <- err
				return
			}
			if err := wtx.Commit(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
