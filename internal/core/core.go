// Package core is the storage engine of the reproduction: a LeanStore-like
// embedded engine with relations, ACID transactions, and first-class BLOB
// columns implementing the paper's design — Blob State indirection
// (§III-B), single-flush durability (§III-C), extent recycling (§III-D),
// content and semantic indexing (§III-F), and virtual-memory-assisted reads
// (§IV).
//
// The public entry points are New (fresh device) and RecoverDevice (after
// a crash); transactions are created with Begin. The engine runs
// in-process (like SQLite) — the paper attributes much of PostgreSQL's and
// MySQL's BLOB overhead to their client/server boundary, which this engine
// simply does not have.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"blobdb/internal/blob"
	"blobdb/internal/btree"
	"blobdb/internal/buffer"
	"blobdb/internal/extent"
	"blobdb/internal/storage"
	"blobdb/internal/wal"
)

// options collects the knobs the functional options (options.go) set. The
// positional core.Open(core.Options{...})/core.Recover(...) constructors
// were removed; New and RecoverDevice are the only construction API.
type options struct {
	// Dev is the block device; required.
	Dev storage.Device
	// PoolPages sizes the buffer pool (default: 1/4 of the device).
	PoolPages int
	// LogPages sizes the WAL region (default: 1/16 of the device).
	LogPages uint64
	// CkptPages sizes the checkpoint region (default: 1/8 of the device).
	CkptPages uint64
	// HashTablePool selects the Our.ht baseline buffer manager instead of
	// the vmcache-style pool.
	HashTablePool bool
	// PhysicalBlobLog selects the Our.physlog baseline: blob content is
	// appended to the WAL in addition to the Blob State.
	PhysicalBlobLog bool
	// UseTailExtents enables §III-A tail extents.
	UseTailExtents bool
	// WorkerLocalAliasPages sizes each worker-local aliasing area
	// (default 1024 pages = 4 MB).
	WorkerLocalAliasPages int
	// WALBufferCap sizes per-transaction WAL buffers (default 10 MB).
	WALBufferCap int
	// CheckpointThreshold triggers a checkpoint after this many logged
	// bytes (default: half the log region).
	CheckpointThreshold int64
	// AsyncCommit enables the background commit pipeline (asynccommit.go):
	// hashing, WAL flush, and extent flush run on a committer goroutine and
	// Commit returns at enqueue. Used by the throughput benchmarks; tests
	// needing a durability point call DrainCommits.
	AsyncCommit bool
	// QueueDepth sizes the device submission/completion queue (default
	// storage.DefaultQueueDepth).
	QueueDepth int
	// InlineQueue makes queue submissions execute synchronously on the
	// submitting goroutine — crashsim's determinism mode.
	InlineQueue bool
}

// DB is an open database.
type DB struct {
	opts  options
	dev   storage.Device
	wal   *wal.Manager
	pool  buffer.Pool
	alloc *extent.Allocator
	alias *buffer.AliasManager
	blobs *blob.Manager

	ckptStart storage.PID
	ckptPages uint64
	ckptNext  int // checkpoint slot the next image is written to; see recover.go

	mu   sync.RWMutex // guards rels
	rels map[string]*Relation

	locks   lockTable
	reclaim reclaimer
	dedup   dedup
	nextTxn atomic.Uint64
	commit  *committer        // non-nil in AsyncCommit mode
	queue   *storage.SubQueue // device submission queue (pool I/O + commit flush)

	// ckptMu serializes checkpoints against commits so a checkpoint image
	// never captures a commit's tree change without its extent flush.
	ckptMu sync.Mutex
}

// Relation is a named key/value relation whose values are inline bytes or
// BLOB columns (Blob States stored with the tuple, §III-B).
type Relation struct {
	name string
	mu   sync.RWMutex
	tree *btree.Tree

	contentIdx  *ContentIndex
	semanticIdx map[string]*SemanticIndex
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// open initializes a database over the device. The device is laid out as
// [WAL | checkpoint area | extent region]. It backs New and RecoverDevice.
func open(o options) (*DB, error) {
	if o.Dev == nil {
		return nil, errors.New("core: device is required")
	}
	n := o.Dev.NumPages()
	if o.LogPages == 0 {
		o.LogPages = n / 16
	}
	if o.CkptPages == 0 {
		o.CkptPages = n / 8
	}
	if o.PoolPages == 0 {
		o.PoolPages = int(n / 4)
	}
	if o.WorkerLocalAliasPages == 0 {
		o.WorkerLocalAliasPages = 1024
	}
	heapStart := storage.PID(o.LogPages + o.CkptPages)
	if uint64(heapStart) >= n {
		return nil, fmt.Errorf("core: device of %d pages too small for log %d + checkpoint %d",
			n, o.LogPages, o.CkptPages)
	}

	db := &DB{
		opts:      o,
		dev:       o.Dev,
		ckptStart: storage.PID(o.LogPages),
		ckptPages: o.CkptPages,
		rels:      map[string]*Relation{},
	}
	db.wal = wal.NewManager(o.Dev, 0, storage.PID(o.LogPages))
	if o.WALBufferCap > 0 {
		db.wal.SetBufferCap(o.WALBufferCap)
	}
	if o.CheckpointThreshold > 0 {
		db.wal.CheckpointThreshold = o.CheckpointThreshold
	} else {
		db.wal.CheckpointThreshold = int64(o.LogPages) * int64(o.Dev.PageSize()) / 2
	}
	db.wal.OnCheckpoint = db.writeCheckpoint

	if o.InlineQueue {
		db.queue = storage.NewInlineSubQueue(o.Dev)
	} else {
		db.queue = storage.NewSubQueue(o.Dev, o.QueueDepth)
	}
	if o.HashTablePool {
		db.pool = buffer.NewHTPool(o.Dev, o.PoolPages)
	} else {
		db.pool = buffer.NewVMPool(o.Dev, o.PoolPages)
	}
	db.pool.SetQueue(db.queue)
	db.alloc = extent.NewAllocator(extent.NewTierTable(extent.DefaultTiersPerLevel),
		heapStart, storage.PID(n))
	db.alias = buffer.NewAliasManager(o.Dev.PageSize(), o.WorkerLocalAliasPages, o.PoolPages)
	db.blobs = blob.NewManager(db.pool, db.alloc, db.alias)
	db.blobs.UseTail = o.UseTailExtents
	db.locks.init()
	db.reclaim.init()
	db.dedup.init(db.wal.NewWriter())
	if o.AsyncCommit {
		db.startCommitter()
	}
	return db, nil
}

// Blobs exposes the blob manager (used by benchmarks and the FUSE layer).
func (db *DB) Blobs() *blob.Manager { return db.blobs }

// Pool exposes the buffer pool.
func (db *DB) Pool() buffer.Pool { return db.pool }

// WAL exposes the write-ahead log manager.
func (db *DB) WAL() *wal.Manager { return db.wal }

// Allocator exposes the extent allocator.
func (db *DB) Allocator() *extent.Allocator { return db.alloc }

// AliasManager exposes the aliasing-area manager.
func (db *DB) AliasManager() *buffer.AliasManager { return db.alias }

// Queue exposes the device submission/completion queue (metrics reach
// through for depth/inflight counters).
func (db *DB) Queue() *storage.SubQueue { return db.queue }

// CreateRelation creates a relation ("CREATE TABLE image(filename VARCHAR
// PRIMARY KEY, content BLOB)" maps to CreateRelation("image")).
func (db *DB) CreateRelation(name string) (*Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rels[name]; ok {
		return nil, fmt.Errorf("core: %q: %w", name, ErrRelExists)
	}
	r := &Relation{name: name, tree: btree.New(nil), semanticIdx: map[string]*SemanticIndex{}}
	db.rels[name] = r
	return r, nil
}

// Relation looks up a relation by name.
func (db *DB) Relation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("core: %q: %w", name, ErrNoRelation)
	}
	return r, nil
}

// Relations returns the relation names in unspecified order.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for name := range db.rels {
		out = append(out, name)
	}
	return out
}

// value encoding: tag byte then payload.
const (
	tagInline byte = 0
	tagBlob   byte = 1
)

// decodeValue splits a stored value into its tag and payload.
func decodeValue(v []byte) (byte, []byte, error) {
	if len(v) == 0 {
		return 0, nil, errors.New("core: empty stored value")
	}
	return v[0], v[1:], nil
}

// DesignSummary returns the qualitative Table I row for this engine.
func DesignSummary() map[string]string {
	return map[string]string{
		"Physical storage format": "Extent sequence (flat list, tier-sized extents, optional tail extent)",
		"Max size":                "10PB (127 extents, 4KB pages, 10 tiers/level)",
		"Read cost":               "Low (one vectored read per BLOB, single indirection)",
		"Indexing - Prefix limit": "Arbitrary size (Blob State index, incremental comparator)",
		"Duplicated copies":       "None (single-flush logging; WAL carries only the Blob State)",
	}
}

// lockTable implements exclusive record locks for 2PL on Blob State rows
// (§III-H). Lock keys are "relation\x00primarykey".
type lockTable struct {
	mu    sync.Mutex
	locks map[string]*recordLock
}

type recordLock struct {
	mu    sync.Mutex
	owner uint64 // txn id holding the lock (under lockTable.mu)
	refs  int
}

func (lt *lockTable) init() { lt.locks = map[string]*recordLock{} }

// acquire blocks until the lock for key is held by txn. Reentrant per txn.
func (lt *lockTable) acquire(txn uint64, key string) bool {
	lt.mu.Lock()
	l, ok := lt.locks[key]
	if !ok {
		l = &recordLock{}
		lt.locks[key] = l
	}
	if l.owner == txn && l.refs > 0 {
		lt.mu.Unlock()
		return false // already held; no extra release needed
	}
	l.refs++
	lt.mu.Unlock()

	l.mu.Lock()
	lt.mu.Lock()
	l.owner = txn
	lt.mu.Unlock()
	return true
}

func (lt *lockTable) release(key string) {
	lt.mu.Lock()
	l := lt.locks[key]
	l.owner = 0
	l.refs--
	if l.refs == 0 {
		delete(lt.locks, key)
	}
	lt.mu.Unlock()
	l.mu.Unlock()
}

func lockKey(rel string, key []byte) string {
	return rel + "\x00" + string(key)
}
