package core

import (
	"errors"

	"blobdb/internal/blob"
)

// Typed sentinel errors returned by the engine. Callers classify failures
// with errors.Is; the network layer (blobserver.httpError) maps each of
// these to an HTTP status in exactly one place. Every error the engine
// returns wraps one of these sentinels — no string matching required.
var (
	// ErrNotFound reports a missing key in an existing relation.
	ErrNotFound = errors.New("core: key not found")
	// ErrRelationNotFound reports a lookup of a relation that was never
	// created.
	ErrRelationNotFound = errors.New("core: relation does not exist")
	// ErrRelationExists reports CreateRelation of a name already in use.
	ErrRelationExists = errors.New("core: relation already exists")
	// ErrTxnDone reports an operation on a committed or aborted Txn.
	ErrTxnDone = errors.New("core: transaction already finished")
	// ErrNotBlob reports a BLOB operation on an inline column (or vice
	// versa).
	ErrNotBlob = errors.New("core: value is not a BLOB column")
	// ErrBlobTooLarge reports a write that exceeds the engine's maximum
	// BLOB size (the extent tier table is exhausted, §III-A). It aliases
	// blob.ErrTooLarge so both layers classify identically.
	ErrBlobTooLarge = blob.ErrTooLarge
	// ErrBlobWriterOpen reports Commit/CommitWait on a transaction that
	// still has an unsealed blob.Writer; Close or Abort the writer first.
	ErrBlobWriterOpen = errors.New("core: transaction has an open blob writer")
)

// Legacy names for the sentinels above, kept as aliases for one release so
// existing errors.Is checks keep working. New code should use the
// canonical names.
var (
	ErrKeyNotFound = ErrNotFound         // use ErrNotFound
	ErrNoRelation  = ErrRelationNotFound // use ErrRelationNotFound
	ErrRelExists   = ErrRelationExists   // use ErrRelationExists
)
