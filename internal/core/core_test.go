package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"blobdb/internal/blob"
	"blobdb/internal/storage"
)

const ps = storage.DefaultPageSize

// testOpts returns small-geometry options over a fresh in-memory device.
func testOpts() options {
	dev := storage.NewMemDevice(ps, 1<<15, nil) // 128MB
	return options{
		Dev:       dev,
		PoolPages: 1 << 12, // 16MB
		LogPages:  1 << 11, // 8MB
		CkptPages: 1 << 11,
	}
}

func openTest(t testing.TB, o options) *DB {
	t.Helper()
	db, err := open(o)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustCommit(t testing.TB, tx *Txn) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateRelation(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("image"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("image"); !errors.Is(err, ErrRelExists) {
		t.Errorf("duplicate create = %v, want ErrRelExists", err)
	}
	if _, err := db.Relation("missing"); !errors.Is(err, ErrNoRelation) {
		t.Errorf("missing relation = %v, want ErrNoRelation", err)
	}
	names := db.Relations()
	if len(names) != 1 || names[0] != "image" {
		t.Errorf("Relations = %v", names)
	}
}

func TestInlinePutGet(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("kv")
	tx := db.Begin(nil)
	if err := tx.Put("kv", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Get("kv", []byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	mustCommit(t, tx)

	tx2 := db.Begin(nil)
	got, err = tx2.Get("kv", []byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after commit = %q, %v", got, err)
	}
	if _, err := tx2.Get("kv", []byte("nope")); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("missing key = %v", err)
	}
	tx2.Commit()
}

func TestBlobPutReadDelete(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("image")
	rng := rand.New(rand.NewSource(1))
	content := make([]byte, 200<<10)
	rng.Read(content)

	tx := db.Begin(nil)
	if err := putBlob(tx, "image", []byte("xray-1.png"), content); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := db.Begin(nil)
	got, err := tx2.ReadBlobBytes("image", []byte("xray-1.png"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("blob roundtrip mismatch")
	}
	st, err := tx2.BlobState("image", []byte("xray-1.png"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != uint64(len(content)) {
		t.Errorf("state size = %d", st.Size)
	}
	tx2.Commit()

	tx3 := db.Begin(nil)
	if err := tx3.DeleteBlob("image", []byte("xray-1.png")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)
	tx4 := db.Begin(nil)
	if _, err := tx4.ReadBlobBytes("image", []byte("xray-1.png")); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("read after delete = %v", err)
	}
	tx4.Commit()
}

func TestBlobSingleFlushWriteAmplification(t *testing.T) {
	// End-to-end single-flush check: committing N blob bytes writes N (plus
	// small WAL records) — not 2N as physlog/conventional engines do.
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	var logical int64
	for i := 0; i < 20; i++ {
		content := bytes.Repeat([]byte{byte(i)}, 100<<10)
		tx := db.Begin(nil)
		if err := putBlob(tx, "r", []byte(fmt.Sprintf("k%02d", i)), content); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		logical += int64(len(content))
	}
	wa := db.WriteAmplification(logical)
	if wa > 1.1 {
		t.Errorf("write amplification = %.3f, want ~1.0 (single flush)", wa)
	}

	// The physlog baseline on identical traffic must be ~2x.
	o2 := testOpts()
	o2.PhysicalBlobLog = true
	db2 := openTest(t, o2)
	db2.CreateRelation("r")
	for i := 0; i < 20; i++ {
		content := bytes.Repeat([]byte{byte(i)}, 100<<10)
		tx := db2.Begin(nil)
		if err := putBlob(tx, "r", []byte(fmt.Sprintf("k%02d", i)), content); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	wa2 := db2.WriteAmplification(logical)
	if wa2 < 1.8 {
		t.Errorf("physlog write amplification = %.3f, want ~2.0", wa2)
	}
}

func TestReplaceBlobFreesOldExtents(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	put := func(content []byte) {
		tx := db.Begin(nil)
		if err := putBlob(tx, "r", []byte("k"), content); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	put(make([]byte, 50<<10))
	liveAfterFirst := db.Allocator().Stats().LivePages
	put(make([]byte, 50<<10)) // replace: old extents freed at commit
	s := db.Allocator().Stats()
	if s.LivePages != liveAfterFirst {
		t.Errorf("LivePages = %d after replace, want %d", s.LivePages, liveAfterFirst)
	}
	// Frees apply at commit, so the *next* allocation picks them up.
	put(make([]byte, 50<<10))
	if db.Allocator().Stats().Reuses == 0 {
		t.Error("third put should reuse extents freed by the replace")
	}
}

func TestAbortRollsBack(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")

	// Committed base value.
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("k"), []byte("original"))
	mustCommit(t, tx)
	liveBase := db.Allocator().Stats().LivePages

	// Aborted overwrite + aborted fresh insert.
	tx2 := db.Begin(nil)
	if err := putBlob(tx2, "r", []byte("k"), bytes.Repeat([]byte{1}, 30<<10)); err != nil {
		t.Fatal(err)
	}
	if err := putBlob(tx2, "r", []byte("fresh"), []byte("new blob")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	tx3 := db.Begin(nil)
	got, err := tx3.ReadBlobBytes("r", []byte("k"))
	if err != nil || string(got) != "original" {
		t.Errorf("after abort: %q, %v", got, err)
	}
	if _, err := tx3.ReadBlobBytes("r", []byte("fresh")); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("aborted insert visible: %v", err)
	}
	tx3.Commit()
	if got := db.Allocator().Stats().LivePages; got != liveBase {
		t.Errorf("LivePages = %d after abort, want %d (no leak)", got, liveBase)
	}
}

func TestTxnDoneErrors(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	tx := db.Begin(nil)
	mustCommit(t, tx)
	if err := tx.Put("r", []byte("k"), []byte("v")); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Put on done txn = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double Commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Abort after Commit = %v", err)
	}
}

func TestGrowAndUpdateThroughTxn(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	content := []byte("hello")
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("k"), content)
	mustCommit(t, tx)

	tx2 := db.Begin(nil)
	if err := growBlob(tx2, "r", []byte("k"), []byte(" world")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	tx3 := db.Begin(nil)
	got, _ := tx3.ReadBlobBytes("r", []byte("k"))
	if string(got) != "hello world" {
		t.Errorf("after grow: %q", got)
	}
	tx3.Commit()

	tx4 := db.Begin(nil)
	if err := tx4.UpdateBlob("r", []byte("k"), 0, []byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx4)
	tx5 := db.Begin(nil)
	got, _ = tx5.ReadBlobBytes("r", []byte("k"))
	if string(got) != "HELLO world" {
		t.Errorf("after update: %q", got)
	}
	tx5.Commit()
}

func TestScan(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("b"), []byte("blob-b"))
	tx.Put("r", []byte("a"), []byte("inline-a"))
	putBlob(tx, "r", []byte("c"), []byte("blob-c"))
	mustCommit(t, tx)

	tx2 := db.Begin(nil)
	var keys []string
	var blobs, inlines int
	err := tx2.Scan("r", nil, func(k, inline []byte, st *blob.State) bool {
		keys = append(keys, string(k))
		if st != nil {
			blobs++
		} else {
			inlines++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[a b c]" || blobs != 2 || inlines != 1 {
		t.Errorf("scan = %v (blobs=%d inlines=%d)", keys, blobs, inlines)
	}
	tx2.Commit()
}

func TestWriteWriteConflictBlocks(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("hot"), []byte("v1"))

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		tx2 := db.Begin(nil)
		close(started)
		putBlob(tx2, "r", []byte("hot"), []byte("v2")) // blocks on the record lock
		tx2.Commit()
		close(done)
	}()
	<-started
	select {
	case <-done:
		t.Fatal("second writer did not block on the record lock")
	default:
	}
	mustCommit(t, tx)
	<-done
	tx3 := db.Begin(nil)
	got, _ := tx3.ReadBlobBytes("r", []byte("hot"))
	if string(got) != "v2" {
		t.Errorf("final value = %q, want v2", got)
	}
	tx3.Commit()
}

func TestConcurrentDisjointWriters(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tx := db.Begin(nil)
				key := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := putBlob(tx, "r", key, bytes.Repeat([]byte{byte(w)}, 8<<10)); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	tx := db.Begin(nil)
	n := 0
	tx.Scan("r", nil, func(k, v []byte, st *blob.State) bool { n++; return true })
	tx.Commit()
	if n != 160 {
		t.Errorf("scanned %d tuples, want 160", n)
	}
}

func TestDesignSummary(t *testing.T) {
	s := DesignSummary()
	if s["Duplicated copies"] == "" || s["Max size"] == "" {
		t.Error("DesignSummary missing fields")
	}
}
