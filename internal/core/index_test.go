package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"blobdb/internal/blob"
)

// seedBlobs commits n deterministic blobs into relation r and returns
// key -> content.
func seedBlobs(t *testing.T, db *DB, rel string, n int, gen func(i int) []byte) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%04d", i)
		content := gen(i)
		tx := db.Begin(nil)
		if err := putBlob(tx, rel, []byte(key), content); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		out[key] = content
	}
	return out
}

func TestContentIndexExactLookup(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	rng := rand.New(rand.NewSource(1))
	data := seedBlobs(t, db, "doc", 50, func(i int) []byte {
		b := make([]byte, 500+rng.Intn(20<<10))
		rng.Read(b)
		return b
	})
	idx, err := db.CreateContentIndex("doc")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Stats().Entries != 50 {
		t.Fatalf("index entries = %d", idx.Stats().Entries)
	}
	for key, content := range data {
		got, err := idx.LookupExact(content)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || string(got[0]) != key {
			t.Fatalf("LookupExact(%s) = %q", key, got)
		}
	}
	if got, err := idx.LookupExact([]byte("no such content")); err != nil || len(got) != 0 {
		t.Errorf("missing content lookup = %q, %v", got, err)
	}
}

func TestContentIndexOrdersByContent(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	// Insert in random key order with contents that sort differently.
	contents := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, c := range contents {
		tx := db.Begin(nil)
		// Pad so blobs span real extents.
		putBlob(tx, "doc", []byte(fmt.Sprintf("key%d", i)), append([]byte(c), bytes.Repeat([]byte{'-'}, 9000)...))
		mustCommit(t, tx)
	}
	idx, err := db.CreateContentIndex("doc")
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	idx.Range(nil, nil, func(pk []byte, st *blob.State) bool {
		// Read back the first bytes of each blob to learn its content word.
		b, _ := db.blobs.ReadAll(nil, st)
		order = append(order, string(b[:bytes.IndexByte(b, '-')]))
		return true
	})
	want := append([]string(nil), contents...)
	sort.Strings(want)
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("index order = %v, want %v", order, want)
	}
}

func TestContentIndexRange(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	for i := 0; i < 26; i++ {
		tx := db.Begin(nil)
		content := append([]byte{byte('a' + i)}, bytes.Repeat([]byte{'x'}, 5000)...)
		putBlob(tx, "doc", []byte(fmt.Sprintf("k%c", 'a'+i)), content)
		mustCommit(t, tx)
	}
	idx, err := db.CreateContentIndex("doc")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = idx.Range([]byte("f"), []byte("m"), func(pk []byte, st *blob.State) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 { // f..l inclusive
		t.Errorf("range returned %d entries, want 7", n)
	}
}

func TestContentIndexMaintainedByWrites(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	if _, err := db.CreateContentIndex("doc"); err != nil {
		t.Fatal(err)
	}
	idx, _ := db.ContentIndexOf("doc")

	tx := db.Begin(nil)
	putBlob(tx, "doc", []byte("k1"), []byte("first content with enough bytes to matter"))
	mustCommit(t, tx)
	if idx.Stats().Entries != 1 {
		t.Fatalf("entries after put = %d", idx.Stats().Entries)
	}

	// Replace: old entry out, new entry in.
	tx2 := db.Begin(nil)
	putBlob(tx2, "doc", []byte("k1"), []byte("replacement content"))
	mustCommit(t, tx2)
	if idx.Stats().Entries != 1 {
		t.Fatalf("entries after replace = %d", idx.Stats().Entries)
	}
	got, _ := idx.LookupExact([]byte("replacement content"))
	if len(got) != 1 {
		t.Error("replacement not found via index")
	}
	gone, _ := idx.LookupExact([]byte("first content with enough bytes to matter"))
	if len(gone) != 0 {
		t.Error("stale index entry for replaced blob")
	}

	// Delete.
	tx3 := db.Begin(nil)
	tx3.DeleteBlob("doc", []byte("k1"))
	mustCommit(t, tx3)
	if idx.Stats().Entries != 0 {
		t.Errorf("entries after delete = %d", idx.Stats().Entries)
	}
}

func TestContentIndexAbortRestores(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	tx := db.Begin(nil)
	putBlob(tx, "doc", []byte("k"), []byte("committed content"))
	mustCommit(t, tx)
	idx, _ := db.CreateContentIndex("doc")

	tx2 := db.Begin(nil)
	putBlob(tx2, "doc", []byte("k"), []byte("aborted content"))
	tx2.Abort()

	got, _ := idx.LookupExact([]byte("committed content"))
	if len(got) != 1 {
		t.Error("abort lost the committed index entry")
	}
	gone, _ := idx.LookupExact([]byte("aborted content"))
	if len(gone) != 0 {
		t.Error("aborted content visible in index")
	}
}

func TestSemanticIndex(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("image")
	// classify() stand-in: first byte of content decides the label.
	classify := func(content []byte) []byte {
		if len(content) > 0 && content[0]%2 == 0 {
			return []byte("cat")
		}
		return []byte("dog")
	}
	var cats int
	for i := 0; i < 30; i++ {
		tx := db.Begin(nil)
		content := append([]byte{byte(i)}, bytes.Repeat([]byte{0xEE}, 2000)...)
		putBlob(tx, "image", []byte(fmt.Sprintf("img%02d", i)), content)
		mustCommit(t, tx)
		if i%2 == 0 {
			cats++
		}
	}
	idx, err := db.CreateSemanticIndex("image", "by_class", classify)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Lookup([]byte("cat"))
	if len(got) != cats {
		t.Errorf("cat lookup = %d keys, want %d", len(got), cats)
	}
	// New writes maintain the index.
	tx := db.Begin(nil)
	putBlob(tx, "image", []byte("extra"), []byte{2, 2, 2}) // cat
	mustCommit(t, tx)
	if len(idx.Lookup([]byte("cat"))) != cats+1 {
		t.Error("semantic index not maintained on insert")
	}
	// Delete maintains the index.
	tx2 := db.Begin(nil)
	tx2.DeleteBlob("image", []byte("extra"))
	mustCommit(t, tx2)
	if len(idx.Lookup([]byte("cat"))) != cats {
		t.Error("semantic index not maintained on delete")
	}
	if _, err := db.SemanticIndexOf("image", "by_class"); err != nil {
		t.Error(err)
	}
	if _, err := db.SemanticIndexOf("image", "nope"); err == nil {
		t.Error("missing index lookup should fail")
	}
}

func TestContentIndexDuplicateContent(t *testing.T) {
	// Two different keys with identical content: the Blob State index keys
	// are byte-identical states except extents; since equality is by
	// SHA-256, the second insert replaces the first entry. This mirrors a
	// unique content index; assert the behaviour is stable.
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	db.CreateContentIndex("doc")
	idx, _ := db.ContentIndexOf("doc")
	same := []byte("identical content bytes")
	for _, k := range []string{"k1", "k2"} {
		tx := db.Begin(nil)
		putBlob(tx, "doc", []byte(k), same)
		mustCommit(t, tx)
	}
	got, _ := idx.LookupExact(same)
	if len(got) != 1 {
		t.Fatalf("duplicate-content lookup = %d entries", len(got))
	}
	if string(got[0]) != "k2" {
		t.Errorf("surviving entry = %q, want the latest writer k2", got[0])
	}
}
