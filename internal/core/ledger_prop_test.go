package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Model-checked ledger property test: drive the engine with a random
// history of share-heavy operations — duplicate puts, deletes of
// sharers, divergent appends, in-place overwrites, relocations, aborted
// shares — against a plain map reference. Two invariants hold after
// every step:
//
//  1. Content: every key reads back byte-identical to the model; absent
//     keys stay absent.
//  2. Ledger: CheckLedger's tuple recount matches the refcount ledger
//     exactly (every extent with >= 2 references has an entry with that
//     count; no stale entries).
//
// The history then crashes and recovers, and both invariants must hold
// again on the rebuilt engine.
func TestLedgerPropertyModelCheck(t *testing.T) {
	const (
		seed  = 77
		steps = 160
		keys  = 12
	)
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("obj")
	rng := rand.New(rand.NewSource(seed))

	// A small pool of distinct contents keeps duplicate puts frequent.
	pool := make([][]byte, 5)
	for i := range pool {
		c := make([]byte, 80<<10+rng.Intn(300<<10))
		rng.Read(c)
		pool[i] = c
	}
	model := map[string][]byte{}
	key := func() string { return fmt.Sprintf("k%02d", rng.Intn(keys)) }

	verify := func(stage string) {
		t.Helper()
		if err := db.CheckLedger(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		for k, want := range model {
			got := readCommitted(t, db, "obj", []byte(k))
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: key %s diverged from model (%d vs %d bytes)",
					stage, k, len(got), len(want))
			}
		}
	}

	for i := 0; i < steps; i++ {
		switch roll := rng.Intn(100); {
		case roll < 35: // duplicate put (the share path)
			k := key()
			c := pool[rng.Intn(len(pool))]
			putCommitted(t, db, "obj", []byte(k), c)
			model[k] = c
		case roll < 45: // unique put; future duplicates can share it
			k := key()
			c := make([]byte, 60<<10+rng.Intn(200<<10))
			rng.Read(c)
			putCommitted(t, db, "obj", []byte(k), c)
			model[k] = c
			pool[rng.Intn(len(pool))] = c
		case roll < 60: // delete (the release path)
			k := key()
			if _, ok := model[k]; !ok {
				continue
			}
			tx := db.Begin(nil)
			if err := tx.DeleteBlob("obj", []byte(k)); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, tx)
			delete(model, k)
		case roll < 72: // divergent append (the clone path)
			k := key()
			if _, ok := model[k]; !ok {
				continue
			}
			extra := make([]byte, 1+rng.Intn(8<<10))
			rng.Read(extra)
			tx := db.Begin(nil)
			if err := growBlob(tx, "obj", []byte(k), extra); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, tx)
			model[k] = append(append([]byte(nil), model[k]...), extra...)
		case roll < 82: // aborted duplicate put: model unchanged
			k := key()
			c := pool[rng.Intn(len(pool))]
			tx := db.Begin(nil)
			if err := putBlob(tx, "obj", []byte(k), c); err != nil {
				t.Fatal(err)
			}
			tx.Abort()
		default: // relocation round (the remap path)
			tx := db.Begin(nil)
			for _, tgt := range db.PlanRelocations(2) {
				if _, err := tx.RelocateExtent(tgt); err != nil {
					t.Fatal(err)
				}
			}
			mustCommit(t, tx)
			db.ReclaimTick()
		}
		if i%20 == 19 {
			verify(fmt.Sprintf("step %d", i))
		}
	}
	verify("final")

	if st := db.DedupStats(); st.Hits == 0 {
		t.Fatalf("history produced no dedup hits; property test exercised nothing: %+v", st)
	}

	db2, _ := crashAndRecover(t, o)
	if err := db2.CheckLedger(); err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
	for k, want := range model {
		got := readCommitted(t, db2, "obj", []byte(k))
		if !bytes.Equal(got, want) {
			t.Fatalf("post-recovery: key %s diverged from model", k)
		}
	}
}

// TestLedgerConcurrentShareDelete hammers the share-vs-delete race: 8
// goroutines repeatedly put duplicates of a handful of shared contents
// and delete them again, each on its own key range (the content index
// and the refcount ledger are the contended structures, not the keys).
// Run under -race; afterwards the ledger must reconcile exactly against
// the surviving tuples and every survivor must read back intact.
func TestLedgerConcurrentShareDelete(t *testing.T) {
	const (
		workers = 8
		iters   = 40
	)
	db := openTest(t, testOpts())
	db.CreateRelation("obj")

	shared := make([][]byte, 3)
	baseRng := rand.New(rand.NewSource(99))
	for i := range shared {
		c := make([]byte, 120<<10)
		baseRng.Read(c)
		shared[i] = c
	}
	// Seed one committed owner per content so every worker's first
	// duplicate put has a candidate to share against.
	for i, c := range shared {
		putCommitted(t, db, "obj", []byte(fmt.Sprintf("seed%d", i)), c)
	}

	type kv struct {
		key     string
		content []byte
	}
	final := make([]map[string][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + int64(w)))
			mine := map[string][]byte{}
			for i := 0; i < iters; i++ {
				k := kv{key: fmt.Sprintf("w%d-k%d", w, rng.Intn(4))}
				if _, ok := mine[k.key]; ok && rng.Intn(2) == 0 {
					tx := db.Begin(nil)
					if err := tx.DeleteBlob("obj", []byte(k.key)); err != nil {
						tx.Abort()
						t.Errorf("worker %d: delete: %v", w, err)
						return
					}
					if err := tx.Commit(); err != nil {
						t.Errorf("worker %d: delete commit: %v", w, err)
						return
					}
					delete(mine, k.key)
					continue
				}
				k.content = shared[rng.Intn(len(shared))]
				tx := db.Begin(nil)
				if err := putBlob(tx, "obj", []byte(k.key), k.content); err != nil {
					tx.Abort()
					t.Errorf("worker %d: put: %v", w, err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d: put commit: %v", w, err)
					return
				}
				mine[k.key] = k.content
			}
			final[w] = mine
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drain deferred frees so the ledger and allocator reach quiescence.
	for db.ReclaimPending() > 0 {
		if db.ReclaimTick() == 0 {
			break
		}
	}
	if err := db.CheckLedger(); err != nil {
		t.Fatalf("CheckLedger after concurrent share/delete: %v", err)
	}
	for w, mine := range final {
		for k, want := range mine {
			if got := readCommitted(t, db, "obj", []byte(k)); !bytes.Equal(got, want) {
				t.Fatalf("worker %d key %s corrupted", w, k)
			}
		}
	}
	for i, c := range shared {
		k := fmt.Sprintf("seed%d", i)
		if got := readCommitted(t, db, "obj", []byte(k)); !bytes.Equal(got, c) {
			t.Fatalf("seed owner %s corrupted", k)
		}
	}
}
