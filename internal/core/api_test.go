package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"blobdb/internal/storage"
)

// TestFunctionalOptions exercises the New/RecoverDevice surface: a database
// built with functional options must behave exactly like one built with the
// positional options shim, and recover through the same knobs.
func TestFunctionalOptions(t *testing.T) {
	dev := storage.NewMemDevice(ps, 1<<15, nil)
	db, err := New(dev,
		WithPoolPages(1<<12), WithLogPages(1<<11), WithCkptPages(1<<11),
		WithTailExtents(true), WithWALBufferCap(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if db.opts.PoolPages != 1<<12 || !db.opts.UseTailExtents || db.opts.WALBufferCap != 4<<20 {
		t.Fatalf("options not applied: %+v", db.opts)
	}
	if _, err := db.CreateRelation("image"); err != nil {
		t.Fatal(err)
	}
	content := []byte("functional options store real data")
	tx := db.Begin(nil)
	w, err := tx.CreateBlob(tx.Context(), "image", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	db2, rep, err := RecoverDevice(dev, nil,
		WithPoolPages(1<<12), WithLogPages(1<<11), WithCkptPages(1<<11), WithTailExtents(true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommittedTxns == 0 {
		t.Error("recovery saw no committed transactions")
	}
	tx2 := db2.Begin(nil)
	got, err := tx2.ReadBlobBytes("image", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if !bytes.Equal(got, content) {
		t.Errorf("recovered content mismatch")
	}
}

// TestErrorTaxonomy pins the typed sentinels and their legacy aliases: the
// blobserver's single error→status mapping depends on errors.Is working
// across the whole API surface.
func TestErrorTaxonomy(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.Relation("nope"); !errors.Is(err, ErrRelationNotFound) {
		t.Errorf("missing relation: got %v want ErrRelationNotFound", err)
	}
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("r"); !errors.Is(err, ErrRelationExists) {
		t.Errorf("duplicate relation: got %v want ErrRelationExists", err)
	}
	tx := db.Begin(nil)
	if _, err := tx.Get("r", []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: got %v want ErrNotFound", err)
	}
	if _, err := tx.BlobState("r", []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing blob: got %v want ErrNotFound", err)
	}
	mustCommit(t, tx)
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: got %v want ErrTxnDone", err)
	}
	// The one-release aliases must remain the same error values, so old
	// errors.Is(err, core.ErrKeyNotFound) call sites keep working.
	if ErrKeyNotFound != ErrNotFound || ErrNoRelation != ErrRelationNotFound || ErrRelExists != ErrRelationExists {
		t.Error("legacy aliases diverged from the new sentinels")
	}
}

// TestCreateBlobStreamingCommit streams a multi-extent blob through the
// transaction layer and checks the committed result against the one-shot
// wrapper: same bytes, same SHA-256 identity.
func TestCreateBlobStreamingCommit(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("image"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5<<20+123)
	rand.New(rand.NewSource(1)).Read(data)

	tx := db.Begin(nil)
	w, err := tx.CreateBlob(tx.Context(), "image", []byte("streamed"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := w.ReadFrom(bytes.NewReader(data)); err != nil || n != int64(len(data)) {
		t.Fatalf("ReadFrom: n=%d err=%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := db.Begin(nil)
	if err := putBlob(tx2, "image", []byte("oneshot"), data); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	tx3 := db.Begin(nil)
	defer tx3.Commit()
	stA, err := tx3.BlobState("image", []byte("streamed"))
	if err != nil {
		t.Fatal(err)
	}
	stB, err := tx3.BlobState("image", []byte("oneshot"))
	if err != nil {
		t.Fatal(err)
	}
	if stA.Size != stB.Size || stA.SHA256 != stB.SHA256 || stA.Prefix != stB.Prefix {
		t.Error("streamed and one-shot states disagree")
	}
	if stA.SHA256 != sha256.Sum256(data) {
		t.Error("sealed SHA-256 does not match the content")
	}
	back, err := tx3.ReadBlobBytes("image", []byte("streamed"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Error("streamed content mismatch")
	}
}

// TestCommitWithOpenWriterRejected: a transaction with an unsealed writer
// must refuse to commit — the blob's State does not exist yet.
func TestCommitWithOpenWriterRejected(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(nil)
	w, err := tx.CreateBlob(tx.Context(), "r", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrBlobWriterOpen) {
		t.Fatalf("Commit with open writer: got %v want ErrBlobWriterOpen", err)
	}
	if err := tx.CommitWait(); !errors.Is(err, ErrBlobWriterOpen) {
		t.Fatalf("CommitWait with open writer: got %v want ErrBlobWriterOpen", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
}

// TestAbortWithOpenWriterReclaims: aborting a transaction mid-stream aborts
// its writers and returns every allocated page.
func TestAbortWithOpenWriterReclaims(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	before := db.Allocator().Stats().LivePages
	tx := db.Begin(nil)
	w, err := tx.CreateBlob(tx.Context(), "r", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 2<<20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if after := db.Allocator().Stats().LivePages; after != before {
		t.Errorf("abort leaked %d pages", after-before)
	}
	tx2 := db.Begin(nil)
	if _, err := tx2.BlobState("r", []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("aborted blob visible: %v", err)
	}
	tx2.Commit()
}

// TestEnqueueCancelledContext: a transaction whose context is cancelled
// before the commit handoff must roll back, not commit.
func TestEnqueueCancelledContext(t *testing.T) {
	o := testOpts()
	o.AsyncCommit = true
	db := openTest(t, o)
	defer db.CloseCommitter()
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tx := db.BeginCtx(ctx, nil)
	if err := tx.Put("r", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := tx.Commit(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Commit after cancel: got %v want context.Canceled", err)
	}
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin(nil)
	if _, err := tx2.Get("r", []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancelled transaction's write visible: %v", err)
	}
	tx2.Commit()
}

// TestCommitWaitCancelledContext: a CommitWait caller whose context dies
// while the committer is busy stops waiting immediately; the commit itself
// still completes in the background and the data is durable.
func TestCommitWaitCancelledContext(t *testing.T) {
	o := testOpts()
	o.AsyncCommit = true
	db := openTest(t, o)
	defer db.CloseCommitter()
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}

	// Stall the committer deterministically: finishBatch serializes on
	// ckptMu, so holding it keeps every ack pending.
	db.ckptMu.Lock()

	ctx, cancel := context.WithCancel(context.Background())
	tx := db.BeginCtx(ctx, nil)
	if err := tx.Put("r", []byte("k"), []byte("v")); err != nil {
		db.ckptMu.Unlock()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tx.CommitWait() }()
	time.Sleep(20 * time.Millisecond) // let CommitWait enqueue and block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			db.ckptMu.Unlock()
			t.Fatalf("CommitWait: got %v want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		db.ckptMu.Unlock()
		t.Fatal("CommitWait did not return after cancellation")
	}
	db.ckptMu.Unlock()

	// The abandoned commit still lands: durability semantics are those of
	// group commit with an unobserved acknowledgement.
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin(nil)
	v, err := tx2.Get("r", []byte("k"))
	if err != nil || string(v) != "v" {
		t.Errorf("abandoned commit not durable: v=%q err=%v", v, err)
	}
	tx2.Commit()
}

// TestBlobWriterContextStopsUpload: the transaction's context reaches its
// writers, so a dead client stops consuming extents mid-stream.
func TestBlobWriterContextStopsUpload(t *testing.T) {
	db := openTest(t, testOpts())
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tx := db.BeginCtx(ctx, nil)
	w, err := tx.CreateBlob(nil, "r", []byte("k")) // nil ctx: inherit the txn's
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := w.ReadFrom(neverEndingReader{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadFrom after cancel: got %v want context.Canceled", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if live := db.Allocator().Stats().LivePages; live != 0 {
		t.Errorf("cancelled upload leaked %d pages", live)
	}
}

type neverEndingReader struct{}

func (neverEndingReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0xAB
	}
	return len(p), nil
}

var _ io.Reader = neverEndingReader{}
