package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"blobdb/internal/blob"
	"blobdb/internal/storage"
	"blobdb/internal/wal"
)

// Content-addressed deduplication (ROADMAP: dedup + CoW versioning).
//
// Blob State already carries the full SHA-256 of the content (§III-B), so
// a committed PUT whose hash (and size) matches an existing blob can share
// that blob's extent sequence instead of allocating a duplicate. Sharing
// makes extent ownership plural, so the engine keeps a refcount ledger:
// one entry per device extent referenced by MORE than one tuple. The
// ledger is sparse — an extent with no entry has exactly one referencing
// tuple (or none, if it is free) — which keeps the common unshared case
// free of bookkeeping.
//
// Mutation protocol (all under dedup.mu, WAL records appended after the
// mutex is released so the lock order never inverts against the
// checkpoint path, which runs under the WAL manager's lock and snapshots
// the ledger):
//
//   - Share (increment): at PUT-seal time. The sealing transaction logs a
//     RecRefDelta batch under its own txn id, so recovery counts the
//     increments exactly when it replays the transaction.
//   - Release (decrement): at deferred-free APPLY time, not at stage
//     time. Every free a transaction stages flows to the epoch reclaimer
//     unfiltered; when the reclaimer applies a batch, frees whose extent
//     has a ledger entry decrement it instead of freeing. Deciding at
//     apply time makes concurrent share-vs-delete races safe by
//     construction: a share staged before the deleting transaction
//     deregistered the content entry is visible to the filter by the time
//     the frees apply. Decrements are logged on a dedicated writer under
//     the id of the transaction that STAGED the free — never txn 0 —
//     because recovery can mark a committed transaction failed (commit
//     record durable, extent writes torn) and revert its tuple to the old
//     state that still references the shared extent; replaying that
//     transaction's decrement anyway would under-count the surviving
//     reference and arm a double-free. Tagging the decrement with the
//     owner makes replay skip it exactly when the reference survives.
//   - Abort undo: a rolled-back share is undone in memory only — its
//     increment record belongs to an uncommitted transaction and is
//     skipped at replay, so no compensation record is needed. If the
//     entry is already gone (the other owner released it first), the
//     extent now belongs solely to the rolled-back tuple and is freed.
//
// Recovery contract (recover.go): the checkpoint image carries the ledger
// with a mutation-sequence fence; replay applies RecRefDelta batches with
// seq above the fence, in seq order, for committed non-failed
// transactions plus txn 0. The replayed ledger is then RECONCILED against
// a recount of references from the surviving tuples — the recount is
// authoritative. A replayed count above the recount is legal (a
// transaction in flight at the crash) and is clamped; a replayed count
// BELOW the recount means an increment was lost, i.e. a double-free was
// armed, and recovery fails loudly.
type dedup struct {
	mu     sync.Mutex
	index  map[contentKey]*blob.State // content hash+size -> a committed owner's state
	ledger map[storage.PID]uint64     // extent -> reference count; present only when >= 2
	seq    uint64                     // mutation-batch counter; the checkpoint fence

	decMu sync.Mutex  // serializes the apply-time decrement writer
	decw  *wal.Writer // txn-0 RecRefDelta appends (deferred-release log)

	// Counters (under mu); exposed via DedupStats.
	hits        uint64
	sharedBytes uint64
	incs        uint64
	decs        uint64
	orphans     uint64
}

// contentKey identifies blob content: the full SHA-256 plus the size (a
// hash collision across different sizes can never alias).
type contentKey struct {
	sha  [32]byte
	size uint64
}

// refDelta is one ledger mutation inside a RecRefDelta batch.
type refDelta struct {
	PID   storage.PID
	Delta int8 // +1 or -1
}

func (d *dedup) init(decw *wal.Writer) {
	d.index = map[contentKey]*blob.State{}
	d.ledger = map[storage.PID]uint64{}
	d.decw = decw
}

func stateKey(st *blob.State) contentKey {
	return contentKey{sha: st.SHA256, size: st.Size}
}

// shareable reports whether a state owns device extents worth sharing.
// Empty and purely inline-sized blobs are excluded.
func shareable(st *blob.State) bool {
	return st != nil && st.Size > 0 && (len(st.Extents) > 0 || st.HasTail())
}

// sameSequence reports whether two states reference the identical extent
// sequence (same PIDs, same tail).
func sameSequence(a, b *blob.State) bool {
	if len(a.Extents) != len(b.Extents) || a.Tail != b.Tail {
		return false
	}
	for i := range a.Extents {
		if a.Extents[i] != b.Extents[i] {
			return false
		}
	}
	return true
}

// statePIDs lists every extent PID a state references (tiered + tail).
func statePIDs(st *blob.State) []storage.PID {
	pids := make([]storage.PID, 0, len(st.Extents)+1)
	pids = append(pids, st.Extents...)
	if st.HasTail() {
		pids = append(pids, st.Tail.PID)
	}
	return pids
}

// tryDedup runs at PUT-seal time (OnSeal, create mode, before the old
// blob at the key is scheduled for freeing): if a committed blob with the
// same content exists, the freshly written extents are discarded and the
// transaction adopts the existing extent sequence, incrementing its
// refcounts. Returns the shared state, or nil when no candidate matches
// (or logging the increments failed, in which case the private copy is
// kept — dedup is an optimization, never a correctness dependency).
func (t *Txn) tryDedup(st *blob.State, p *blob.Pending) *blob.State {
	if !shareable(st) {
		return nil
	}
	d := &t.db.dedup
	ck := stateKey(st)
	d.mu.Lock()
	cand := d.index[ck]
	if cand == nil || sameSequence(cand, st) {
		d.mu.Unlock()
		return nil
	}
	specs := t.db.blobs.Delete(cand) // every extent of the candidate, as free specs
	entries := make([]refDelta, 0, len(specs))
	for _, s := range specs {
		if v, ok := d.ledger[s.PID]; ok {
			d.ledger[s.PID] = v + 1
		} else {
			d.ledger[s.PID] = 2
		}
		entries = append(entries, refDelta{PID: s.PID, Delta: +1})
	}
	d.seq++
	seq := d.seq
	d.hits++
	d.incs += uint64(len(entries))
	d.sharedBytes += st.Size
	shared := cand.Clone()
	d.mu.Unlock()

	// Log the increments under the sealing transaction's id — outside the
	// ledger mutex (the append can flush, and a flush can checkpoint,
	// which snapshots the ledger). The seq fence keeps replay exact.
	if _, err := t.writer.AppendLSN(t.meter, t.id, wal.RecRefDelta, encodeRefDelta(seq, entries)); err != nil {
		t.db.undoShares(t.id, specs)
		return nil
	}
	t.sharedIncs = append(t.sharedIncs, specs...)

	// Adopt the shared sequence: the private extents this writer just
	// allocated are returned to the allocator (their flushed bytes are the
	// cost of hashing-before-knowing, §III-C stream mode).
	p.Discard(p.News)
	p.News = nil
	// The adopted state describes identical content, so the hash,
	// intermediate state, and prefix carry over from the fresh write.
	shared.Intermediate = st.Intermediate
	return shared
}

// dedupOnMutate runs when a transaction stages a mutation that will free,
// overwrite, or relocate st's extents: the content-index entry matching
// st's exact sequence is removed (no later PUT may begin sharing a doomed
// sequence) and the result reports whether any extent of st is currently
// shared — the caller must clone, not mutate in place, when it is.
// Deregistration is not undone on abort; the entry reappears when a
// transaction owning the content next commits.
func (db *DB) dedupOnMutate(st *blob.State) (sharedAny bool) {
	if !shareable(st) {
		return false
	}
	d := &db.dedup
	d.mu.Lock()
	defer d.mu.Unlock()
	if cand := d.index[stateKey(st)]; cand != nil && sameSequence(cand, st) {
		delete(d.index, stateKey(st))
	}
	for _, pid := range statePIDs(st) {
		if _, ok := d.ledger[pid]; ok {
			return true
		}
	}
	return false
}

// undoShares rolls back a transaction's staged refcount increments: each
// is decremented in memory (the increment record belongs to an
// uncommitted transaction and is skipped at replay, so no compensation
// record is logged). An entry already released by its other owner means
// the extent now belongs solely to the rolled-back tuple — it is freed
// through the reclaimer.
func (db *DB) undoShares(txn uint64, specs []blob.FreeSpec) {
	if len(specs) == 0 {
		return
	}
	d := &db.dedup
	var orphans []blob.FreeSpec
	d.mu.Lock()
	for _, s := range specs {
		if v, ok := d.ledger[s.PID]; ok {
			if v <= 2 {
				delete(d.ledger, s.PID)
			} else {
				d.ledger[s.PID] = v - 1
			}
		} else {
			orphans = append(orphans, s)
			d.orphans++
		}
	}
	d.mu.Unlock()
	if len(orphans) > 0 {
		db.deferFrees(txn, orphans)
	}
}

// applyFrees is the ledger-aware form of blob.Manager.ApplyFrees: frees
// whose extent has a ledger entry decrement it instead of returning the
// extent to the allocator. This runs at deferred-free apply time (under
// the reclaimer lock), which is what makes share-vs-delete races safe: by
// the time a committed delete's frees apply, any share staged against the
// same content entry has already incremented the ledger.
func (db *DB) applyFrees(txn uint64, specs []blob.FreeSpec) {
	d := &db.dedup
	var kept []blob.FreeSpec
	var entries []refDelta
	d.mu.Lock()
	for _, s := range specs {
		if v, ok := d.ledger[s.PID]; ok {
			if v <= 2 {
				delete(d.ledger, s.PID)
			} else {
				d.ledger[s.PID] = v - 1
			}
			entries = append(entries, refDelta{PID: s.PID, Delta: -1})
			d.decs++
			continue
		}
		kept = append(kept, s)
	}
	var seq uint64
	if len(entries) > 0 {
		d.seq++
		seq = d.seq
	}
	d.mu.Unlock()
	if len(entries) > 0 {
		d.logDecs(txn, seq, entries)
	}
	db.blobs.ApplyFrees(kept)
}

// logDecs appends an apply-time decrement batch under the id of the
// transaction whose staged free produced it, and flushes it promptly.
// The owner tag is what keeps replay exact: recovery applies the batch
// only when the owner is committed AND validated — a failed owner's
// tuple reverts to the state that still references the extent, so its
// decrement must vanish with it. Durability is opportunistic: a
// decrement lost to a crash leaves the replayed count high, which
// recovery's reconciliation clamps against the tuple recount.
func (d *dedup) logDecs(txn, seq uint64, entries []refDelta) {
	d.decMu.Lock()
	defer d.decMu.Unlock()
	if _, err := d.decw.AppendLSN(nil, txn, wal.RecRefDelta, encodeRefDelta(seq, entries)); err != nil {
		return
	}
	_ = d.decw.Flush(nil)
}

// registerDedup publishes committed states in the content index. Called
// only on the commit success path (never at stage time): an index entry
// must always describe a committed, durable extent sequence, or a
// concurrent PUT could share extents that a rollback then frees.
func (db *DB) registerDedup(sts []*blob.State) {
	if len(sts) == 0 {
		return
	}
	d := &db.dedup
	d.mu.Lock()
	for _, st := range sts {
		if shareable(st) {
			d.index[stateKey(st)] = st.Clone()
		}
	}
	d.mu.Unlock()
}

// RecRefDelta payload: seq u64 | n u32 | n x (pid u64, delta i8).
const refDeltaHeader = 8 + 4

func encodeRefDelta(seq uint64, entries []refDelta) []byte {
	out := make([]byte, refDeltaHeader+9*len(entries))
	binary.LittleEndian.PutUint64(out[0:], seq)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(entries)))
	off := refDeltaHeader
	for _, e := range entries {
		binary.LittleEndian.PutUint64(out[off:], uint64(e.PID))
		out[off+8] = byte(e.Delta)
		off += 9
	}
	return out
}

func decodeRefDelta(b []byte) (seq uint64, entries []refDelta, err error) {
	if len(b) < refDeltaHeader {
		return 0, nil, fmt.Errorf("core: ref-delta payload of %d bytes too short", len(b))
	}
	seq = binary.LittleEndian.Uint64(b[0:])
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) != refDeltaHeader+9*n {
		return 0, nil, fmt.Errorf("core: ref-delta payload declares %d entries but has %d trailing bytes", n, len(b)-refDeltaHeader)
	}
	entries = make([]refDelta, n)
	off := refDeltaHeader
	for i := 0; i < n; i++ {
		entries[i].PID = storage.PID(binary.LittleEndian.Uint64(b[off:]))
		entries[i].Delta = int8(b[off+8])
		off += 9
	}
	return seq, entries, nil
}

// Ledger checkpoint section: seq u64 | n u32 | n x (pid u64, count u64),
// entries sorted by PID so images are byte-identical across runs (the
// crash simulator replays schedules against recorded device-op hashes).
func marshalLedger(seq uint64, ledger map[storage.PID]uint64) []byte {
	pids := make([]storage.PID, 0, len(ledger))
	for pid := range ledger {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]byte, 8+4+16*len(pids))
	binary.LittleEndian.PutUint64(out[0:], seq)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(pids)))
	off := 12
	for _, pid := range pids {
		binary.LittleEndian.PutUint64(out[off:], uint64(pid))
		binary.LittleEndian.PutUint64(out[off+8:], ledger[pid])
		off += 16
	}
	return out
}

// unmarshalLedger parses a ledger section, returning the unconsumed rest
// of the buffer (the checkpoint body continues after the section).
func unmarshalLedger(b []byte) (seq uint64, ledger map[storage.PID]uint64, rest []byte, err error) {
	if len(b) < 12 {
		return 0, nil, nil, fmt.Errorf("core: ledger section of %d bytes too short", len(b))
	}
	seq = binary.LittleEndian.Uint64(b[0:])
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if n < 0 || len(b)-12 < 16*n {
		return 0, nil, nil, fmt.Errorf("core: ledger section declares %d entries, only %d bytes follow", n, len(b)-12)
	}
	ledger = make(map[storage.PID]uint64, n)
	off := 12
	var prev storage.PID
	for i := 0; i < n; i++ {
		pid := storage.PID(binary.LittleEndian.Uint64(b[off:]))
		count := binary.LittleEndian.Uint64(b[off+8:])
		if i > 0 && pid <= prev {
			return 0, nil, nil, fmt.Errorf("core: ledger section entries out of order at %d", i)
		}
		if count < 2 {
			return 0, nil, nil, fmt.Errorf("core: ledger entry for PID %d has count %d < 2", pid, count)
		}
		prev = pid
		ledger[pid] = count
		off += 16
	}
	return seq, ledger, b[off:], nil
}

// snapshotLedger captures the ledger and its fence for a checkpoint
// image. It MUST be called after the relation trees are serialized: an
// increment happens-before its tuple reaches the tree, so
// tuple-in-image implies increment-in-image and reconciliation never
// sees an image-induced under-count.
func (d *dedup) snapshotLedger() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return marshalLedger(d.seq, d.ledger)
}

// recountRefs recomputes the per-extent reference counts from the live
// tuples — the authoritative definition of the refcount. Takes the
// relation locks; do not call with them held.
func (db *DB) recountRefs() map[storage.PID]uint64 {
	counts := map[storage.PID]uint64{}
	db.mu.RLock()
	rels := make([]*Relation, 0, len(db.rels))
	for _, r := range db.rels {
		rels = append(rels, r)
	}
	db.mu.RUnlock()
	for _, r := range rels {
		r.mu.RLock()
		r.tree.Ascend(nil, func(_, v []byte) bool {
			tag, payload, err := decodeValue(v)
			if err != nil || tag != tagBlob {
				return true
			}
			st, err := blob.Decode(payload)
			if err != nil {
				return true
			}
			for _, pid := range statePIDs(st) {
				counts[pid]++
			}
			return true
		})
		r.mu.RUnlock()
	}
	return counts
}

// CheckLedger verifies the refcount ledger against a recount of the live
// tuples: every extent referenced by >= 2 tuples must have a ledger entry
// with exactly that count, and no entry may exist for an extent with < 2
// references. Tests and the crash simulator call it after quiescing.
func (db *DB) CheckLedger() error {
	counts := db.recountRefs()
	d := &db.dedup
	d.mu.Lock()
	defer d.mu.Unlock()
	for pid, want := range counts {
		got := d.ledger[pid]
		if want >= 2 && got != want {
			return fmt.Errorf("core: ledger: extent %d referenced by %d tuples, ledger says %d", pid, want, got)
		}
	}
	for pid, got := range d.ledger {
		if counts[pid] < 2 {
			return fmt.Errorf("core: ledger: stale entry for extent %d (count %d, %d live references)", pid, got, counts[pid])
		}
	}
	return nil
}

// DedupStats is a point-in-time snapshot of the content index and ledger.
type DedupStats struct {
	IndexEntries  int    // content-index entries (distinct committed contents)
	SharedExtents int    // extents with refcount >= 2
	Hits          uint64 // PUTs deduplicated against an existing blob
	SharedBytes   uint64 // logical bytes served by sharing instead of new extents
	Increments    uint64 // refcount increments (shares)
	Decrements    uint64 // refcount decrements (deferred releases intercepted)
	OrphanFrees   uint64 // extents freed by rolling back a share whose co-owner left
}

// DedupStats reports dedup/ledger counters (metrics and tests).
func (db *DB) DedupStats() DedupStats {
	d := &db.dedup
	d.mu.Lock()
	defer d.mu.Unlock()
	return DedupStats{
		IndexEntries:  len(d.index),
		SharedExtents: len(d.ledger),
		Hits:          d.hits,
		SharedBytes:   d.sharedBytes,
		Increments:    d.incs,
		Decrements:    d.decs,
		OrphanFrees:   d.orphans,
	}
}
