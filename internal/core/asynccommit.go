package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Async commit pipeline.
//
// The paper's commit path (§III-C, §V-A) keeps I/O off the critical path:
// the WAL is group-committed and the extent flush is issued as asynchronous
// I/O. With AsyncCommit enabled the engine defers WAL flushing, the extent
// flush, and lock release to a background committer goroutine, and Commit
// returns once the transaction is enqueued (bounded queue: a slow device
// exerts backpressure). Hashing is no longer deferred: the streaming blob
// writer absorbs every chunk into the resumable SHA-256 while the data is
// still cache-hot, so Blob States arrive at the committer already final.
//
// This is real pipelining, not an accounting trick: on a multicore machine
// the committer overlaps with the workers exactly as the paper's group
// committer and I/O workers do. Durability semantics are those of group
// commit with asynchronous acknowledgement; tests that need a durability
// point call DB.DrainCommits, and callers that need a per-transaction
// durability ack (the network blob service) use Txn.CommitWait. Recovery
// semantics are unchanged — a transaction is committed iff its commit
// record (with the final, SHA-complete Blob State) is durable.
//
// The committer drains its queue into batches: every transaction's WAL
// records are flushed, then ONE device sync makes the whole batch durable
// — so concurrent writers share WAL syncs exactly as the paper's group
// commit shares them. Batch-size statistics are exposed through
// DB.CommitBatchStats.
type committer struct {
	ch   chan *Txn
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	once sync.Once
	busy atomic.Int64 // nanoseconds spent finishing commits

	batches   atomic.Int64 // shared WAL syncs issued for commit batches
	batchTxns atomic.Int64 // transactions covered by those syncs

	// Backpressure: the bytes pinned by in-flight commits are bounded so
	// deep pipelines cannot wedge the buffer pool. Workers block in Commit
	// when over budget; blocked time is tracked so the benchmark model can
	// separate worker CPU from pipeline waiting.
	flowMu      sync.Mutex
	flowCond    *sync.Cond
	inflight    int64
	budgetBytes int64
	blocked     atomic.Int64 // nanoseconds workers spent waiting on the pipeline

	// Deterministic-batch gate (crash simulation): while gated, the
	// committer parks after receiving the first transaction of a batch and
	// before draining the rest, so a test can enqueue an exact set of
	// transactions and release them as ONE batch with a known composition.
	gateMu   sync.Mutex
	gateCond *sync.Cond
	gated    bool
}

// maxCommitBatch caps how many transactions one WAL sync may cover.
const maxCommitBatch = 32

// startCommitter launches the background committer (AsyncCommit mode).
func (db *DB) startCommitter() {
	db.commit = &committer{
		ch: make(chan *Txn, 64),
		// Half the buffer pool may be pinned by in-flight commits.
		budgetBytes: int64(db.opts.PoolPages) * int64(db.dev.PageSize()) / 2,
	}
	db.commit.flowCond = sync.NewCond(&db.commit.flowMu)
	db.commit.gateCond = sync.NewCond(&db.commit.gateMu)
	db.commit.wg.Add(1)
	go func() {
		defer db.commit.wg.Done()
		for {
			t, ok := <-db.commit.ch
			if !ok {
				return
			}
			// While HoldCommits is in effect, park before forming the batch
			// so every transaction enqueued under the hold lands in it.
			db.commit.waitGate()
			// Group commit: drain whatever else is already queued so the
			// whole batch shares one WAL sync.
			batch := append(make([]*Txn, 0, maxCommitBatch), t)
		drain:
			for len(batch) < maxCommitBatch {
				select {
				case t2, ok2 := <-db.commit.ch:
					if !ok2 {
						break drain
					}
					batch = append(batch, t2)
				default:
					break drain
				}
			}
			start := time.Now() //blobvet:allow real committer-busy accounting for the benchmark overlap model
			db.finishBatch(batch)
			db.commit.busy.Add(int64(time.Since(start))) //blobvet:allow real committer-busy accounting for the benchmark overlap model
		}
	}()
}

// enqueue hands a transaction to the committer, blocking while the
// pipeline holds more than its byte budget of pinned frames. If the
// transaction's context is cancelled before the handoff happens, enqueue
// gives up and returns the context error — a cancelled HTTP request stops
// waiting for pipeline capacity instead of leaking a blocked goroutine.
func (c *committer) enqueue(t *Txn) error {
	tb := t.pendingBytes()
	t.inflightBytes = tb
	start := time.Now() //blobvet:allow real backpressure-blocked accounting for the benchmark overlap model
	defer func() {
		if d := time.Since(start); d > time.Microsecond { //blobvet:allow real backpressure-blocked accounting for the benchmark overlap model
			c.blocked.Add(int64(d))
		}
	}()
	// Wake the cond-var wait below when the context dies; sync.Cond has no
	// native context support.
	stop := context.AfterFunc(t.ctx, func() {
		c.flowMu.Lock()
		c.flowCond.Broadcast()
		c.flowMu.Unlock()
	})
	defer stop()
	c.flowMu.Lock()
	for c.inflight > 0 && c.inflight+tb > c.budgetBytes {
		if err := t.ctx.Err(); err != nil {
			c.flowMu.Unlock()
			return err
		}
		c.flowCond.Wait()
	}
	c.inflight += tb
	c.flowMu.Unlock()
	// Re-check before the handoff: a select with both arms ready picks
	// randomly, and an already-cancelled transaction must never commit.
	if err := t.ctx.Err(); err != nil {
		c.release(t)
		return err
	}
	select {
	case c.ch <- t:
		return nil
	case <-t.ctx.Done():
		c.release(t) // undo the budget reservation
		return t.ctx.Err()
	}
}

// release returns a finished transaction's bytes to the budget. The byte
// count was snapshotted at enqueue time — the pending frames are already
// released by the time this runs.
func (c *committer) release(t *Txn) {
	c.flowMu.Lock()
	c.inflight -= t.inflightBytes
	c.flowCond.Broadcast()
	c.flowMu.Unlock()
}

// pendingBytes sums the frame bytes a transaction keeps pinned until its
// commit finishes.
func (t *Txn) pendingBytes() int64 {
	var n int64
	for _, p := range t.pendings {
		for _, f := range p.Frames {
			n += int64(f.NPages) * int64(t.db.dev.PageSize())
		}
	}
	return n
}

// waitGate parks the committer while a HoldCommits window is open.
func (c *committer) waitGate() {
	c.gateMu.Lock()
	for c.gated {
		c.gateCond.Wait()
	}
	c.gateMu.Unlock()
}

// HoldCommits pauses the async committer's batch formation: transactions
// enqueued while the hold is in effect accumulate in the queue instead of
// being committed one by one. ReleaseCommits lets them go as a single
// group-commit batch of known composition — the crash-simulation harness
// uses this to make batch boundaries deterministic. No-op without
// AsyncCommit. Every HoldCommits must be paired with ReleaseCommits
// (DrainCommits and CloseCommitter deadlock under an open hold).
func (db *DB) HoldCommits() {
	if db.commit == nil {
		return
	}
	db.commit.gateMu.Lock()
	db.commit.gated = true
	db.commit.gateMu.Unlock()
}

// ReleaseCommits ends a HoldCommits window.
func (db *DB) ReleaseCommits() {
	if db.commit == nil {
		return
	}
	db.commit.gateMu.Lock()
	db.commit.gated = false
	db.commit.gateCond.Broadcast()
	db.commit.gateMu.Unlock()
}

// CommitBlocked reports the cumulative time workers spent blocked on the
// commit pipeline (backpressure and drains). The benchmark model subtracts
// it from wall time to recover pure worker CPU.
func (db *DB) CommitBlocked() time.Duration {
	if db.commit == nil {
		return 0
	}
	return time.Duration(db.commit.blocked.Load())
}

// CommitterBusy reports the cumulative time the background committer has
// spent finishing commits. On a multicore host this work overlaps with the
// workers; the benchmark harness models that overlap explicitly so results
// are comparable on single-core machines.
func (db *DB) CommitterBusy() time.Duration {
	if db.commit == nil {
		return 0
	}
	return time.Duration(db.commit.busy.Load())
}

// CommitterErr reports the first background commit failure without
// draining the pipeline (nil without AsyncCommit, or while healthy). A
// non-nil result means the engine's durability path is poisoned — the
// shard router uses this to fence a crashed engine and fail its
// keyspace slice fast instead of queueing doomed work behind it.
func (db *DB) CommitterErr() error {
	if db.commit == nil {
		return nil
	}
	db.commit.mu.Lock()
	defer db.commit.mu.Unlock()
	return db.commit.err
}

// DrainCommits blocks until every enqueued commit has fully finished and
// returns the first background commit error, if any.
func (db *DB) DrainCommits() error {
	if db.commit == nil {
		return nil
	}
	start := time.Now() //blobvet:allow real drain-blocked accounting for the benchmark overlap model
	done := make(chan struct{})
	db.commit.ch <- &Txn{drain: done}
	<-done
	db.commit.blocked.Add(int64(time.Since(start))) //blobvet:allow real drain-blocked accounting for the benchmark overlap model
	db.commit.mu.Lock()
	defer db.commit.mu.Unlock()
	return db.commit.err
}

// CloseCommitter stops the pipeline (used by tests; safe to skip).
func (db *DB) CloseCommitter() error {
	if db.commit == nil {
		return nil
	}
	err := db.DrainCommits()
	db.commit.once.Do(func() { close(db.commit.ch) })
	db.commit.wg.Wait()
	return err
}

// finishBatch runs the deferred half of a batch of transactions on the
// committer: every transaction is finalized and its WAL records flushed,
// then one shared sync makes the whole batch durable, then each
// transaction's extents are flushed (§III-C ordering is preserved — the
// extent flush of a transaction happens strictly after its commit record
// is durable). Drain sentinels are acknowledged once the batch completes.
func (db *DB) finishBatch(batch []*Txn) {
	// Background work is charged to no meter: its cost reaches the
	// measurement only as real wall time through backpressure when the
	// committer is the bottleneck — exactly how the paper's group
	// committer behaves.
	var drains []chan struct{}
	live := batch[:0]
	for _, t := range batch {
		if t.drain != nil {
			drains = append(drains, t.drain)
			continue
		}
		live = append(live, t)
	}

	if len(live) > 0 {
		db.ckptMu.Lock()
		flushed := live[:0]
		for _, t := range live {
			if err := t.writer.CommitNoSync(nil, t.id); err != nil {
				db.failCommit(t, err)
				continue
			}
			flushed = append(flushed, t)
		}
		if len(flushed) > 0 {
			// The shared group-commit sync: one durability point for the
			// whole batch.
			if err := db.wal.Sync(nil); err != nil {
				for _, t := range flushed {
					db.failCommit(t, err)
				}
				flushed = flushed[:0]
			} else {
				db.commit.batches.Add(1)
				db.commit.batchTxns.Add(int64(len(flushed)))
			}
		}
		done := flushed[:0]
		for _, t := range flushed {
			var err error
			for _, p := range t.pendings {
				if err = p.Flush(nil); err != nil {
					break
				}
			}
			if err != nil {
				db.failCommit(t, err)
				continue
			}
			done = append(done, t)
		}
		db.ckptMu.Unlock()
		for _, t := range done {
			for _, p := range t.pendings {
				p.Release()
			}
			db.blobs.ApplyFrees(t.frees)
			t.releaseLocks()
			t.writer.Close()
			db.commit.release(t)
			if t.waitC != nil {
				t.waitC <- nil
			}
		}
	}
	for _, d := range drains {
		close(d)
	}
}

// failCommit records a background commit failure and releases everything
// the transaction holds — pinned frames, locks, WAL buffer, byte budget —
// so the system cannot wedge; a CommitWait caller receives the error.
func (db *DB) failCommit(t *Txn, err error) {
	err = fmt.Errorf("core: async commit txn %d: %w", t.id, err)
	db.commit.mu.Lock()
	if db.commit.err == nil {
		db.commit.err = err
	}
	db.commit.mu.Unlock()
	for _, p := range t.pendings {
		p.ReleaseUnflushed()
	}
	t.releaseLocks()
	t.writer.Close()
	db.commit.release(t)
	if t.waitC != nil {
		t.waitC <- err
	}
}

// CommitBatchStats reports group-commit batching on the async pipeline:
// the number of shared WAL syncs issued for commit batches and the number
// of transactions those syncs covered. txns/flushes > 1 means concurrent
// commits are sharing durability syncs.
func (db *DB) CommitBatchStats() (flushes, txns int64) {
	if db.commit == nil {
		return 0, 0
	}
	return db.commit.batches.Load(), db.commit.batchTxns.Load()
}
