package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blobdb/internal/blob"
	"blobdb/internal/wal"
)

// Async commit pipeline.
//
// The paper's commit path (§III-C, §V-A) keeps I/O off the critical path:
// the WAL is group-committed and the extent flush is issued as asynchronous
// I/O. In the same spirit, the SHA-256 of a new BLOB only has to be ready
// when its Blob State record is *flushed*, not when the transaction's
// worker hands it off — so with AsyncCommit enabled the engine defers
// hashing, WAL flushing, the extent flush, and lock release to a background
// committer goroutine, and Commit returns once the transaction is enqueued
// (bounded queue: a slow device exerts backpressure).
//
// This is real pipelining, not an accounting trick: on a multicore machine
// the committer overlaps with the workers exactly as the paper's group
// committer and I/O workers do. Durability semantics are those of group
// commit with asynchronous acknowledgement; tests that need a durability
// point call DB.DrainCommits, and callers that need a per-transaction
// durability ack (the network blob service) use Txn.CommitWait. Recovery
// semantics are unchanged — a transaction is committed iff its commit
// record (with the final, SHA-complete Blob State) is durable.
//
// The committer drains its queue into batches: every transaction in a
// batch is finalized (hash, tuple refresh, WAL records) and flushed, then
// ONE device sync makes the whole batch durable — so concurrent writers
// share WAL syncs exactly as the paper's group commit shares them.
// Batch-size statistics are exposed through DB.CommitBatchStats.
type committer struct {
	ch   chan *Txn
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	once sync.Once
	busy atomic.Int64 // nanoseconds spent finishing commits

	batches   atomic.Int64 // shared WAL syncs issued for commit batches
	batchTxns atomic.Int64 // transactions covered by those syncs

	// Backpressure: the bytes pinned by in-flight commits are bounded so
	// deep pipelines cannot wedge the buffer pool. Workers block in Commit
	// when over budget; blocked time is tracked so the benchmark model can
	// separate worker CPU from pipeline waiting.
	flowMu      sync.Mutex
	flowCond    *sync.Cond
	inflight    int64
	budgetBytes int64
	blocked     atomic.Int64 // nanoseconds workers spent waiting on the pipeline
}

// deferredBlob finalizes one PutBlob at commit time: compute the hash from
// the pinned frames, refresh the tuple, and append the WAL record.
type deferredBlob struct {
	rel     *Relation
	key     []byte
	st      *blob.State
	physlog bool
}

// maxCommitBatch caps how many transactions one WAL sync may cover.
const maxCommitBatch = 32

// startCommitter launches the background committer (AsyncCommit mode).
func (db *DB) startCommitter() {
	db.commit = &committer{
		ch: make(chan *Txn, 64),
		// Half the buffer pool may be pinned by in-flight commits.
		budgetBytes: int64(db.opts.PoolPages) * int64(db.dev.PageSize()) / 2,
	}
	db.commit.flowCond = sync.NewCond(&db.commit.flowMu)
	db.commit.wg.Add(1)
	go func() {
		defer db.commit.wg.Done()
		for {
			t, ok := <-db.commit.ch
			if !ok {
				return
			}
			// Group commit: drain whatever else is already queued so the
			// whole batch shares one WAL sync.
			batch := append(make([]*Txn, 0, maxCommitBatch), t)
		drain:
			for len(batch) < maxCommitBatch {
				select {
				case t2, ok2 := <-db.commit.ch:
					if !ok2 {
						break drain
					}
					batch = append(batch, t2)
				default:
					break drain
				}
			}
			start := time.Now()
			db.finishBatch(batch)
			db.commit.busy.Add(int64(time.Since(start)))
		}
	}()
}

// enqueue hands a transaction to the committer, blocking while the
// pipeline holds more than its byte budget of pinned frames.
func (c *committer) enqueue(t *Txn) {
	tb := t.pendingBytes()
	t.inflightBytes = tb
	start := time.Now()
	c.flowMu.Lock()
	for c.inflight > 0 && c.inflight+tb > c.budgetBytes {
		c.flowCond.Wait()
	}
	c.inflight += tb
	c.flowMu.Unlock()
	c.ch <- t
	if d := time.Since(start); d > time.Microsecond {
		c.blocked.Add(int64(d))
	}
}

// release returns a finished transaction's bytes to the budget. The byte
// count was snapshotted at enqueue time — the pending frames are already
// released by the time this runs.
func (c *committer) release(t *Txn) {
	c.flowMu.Lock()
	c.inflight -= t.inflightBytes
	c.flowCond.Broadcast()
	c.flowMu.Unlock()
}

// pendingBytes sums the frame bytes a transaction keeps pinned until its
// commit finishes.
func (t *Txn) pendingBytes() int64 {
	var n int64
	for _, p := range t.pendings {
		for _, f := range p.Frames {
			n += int64(f.NPages) * int64(t.db.dev.PageSize())
		}
	}
	return n
}

// CommitBlocked reports the cumulative time workers spent blocked on the
// commit pipeline (backpressure and drains). The benchmark model subtracts
// it from wall time to recover pure worker CPU.
func (db *DB) CommitBlocked() time.Duration {
	if db.commit == nil {
		return 0
	}
	return time.Duration(db.commit.blocked.Load())
}

// CommitterBusy reports the cumulative time the background committer has
// spent finishing commits. On a multicore host this work overlaps with the
// workers; the benchmark harness models that overlap explicitly so results
// are comparable on single-core machines.
func (db *DB) CommitterBusy() time.Duration {
	if db.commit == nil {
		return 0
	}
	return time.Duration(db.commit.busy.Load())
}

// DrainCommits blocks until every enqueued commit has fully finished and
// returns the first background commit error, if any.
func (db *DB) DrainCommits() error {
	if db.commit == nil {
		return nil
	}
	start := time.Now()
	done := make(chan struct{})
	db.commit.ch <- &Txn{drain: done}
	<-done
	db.commit.blocked.Add(int64(time.Since(start)))
	db.commit.mu.Lock()
	defer db.commit.mu.Unlock()
	return db.commit.err
}

// CloseCommitter stops the pipeline (used by tests; safe to skip).
func (db *DB) CloseCommitter() error {
	if db.commit == nil {
		return nil
	}
	err := db.DrainCommits()
	db.commit.once.Do(func() { close(db.commit.ch) })
	db.commit.wg.Wait()
	return err
}

// finishBatch runs the deferred half of a batch of transactions on the
// committer: every transaction is finalized and its WAL records flushed,
// then one shared sync makes the whole batch durable, then each
// transaction's extents are flushed (§III-C ordering is preserved — the
// extent flush of a transaction happens strictly after its commit record
// is durable). Drain sentinels are acknowledged once the batch completes.
func (db *DB) finishBatch(batch []*Txn) {
	// Background work is charged to no meter: its cost reaches the
	// measurement only as real wall time through backpressure when the
	// committer is the bottleneck — exactly how the paper's group
	// committer behaves.
	var drains []chan struct{}
	live := batch[:0]
	for _, t := range batch {
		if t.drain != nil {
			drains = append(drains, t.drain)
			continue
		}
		if err := db.prepareCommit(t); err != nil {
			db.failCommit(t, err)
			continue
		}
		live = append(live, t)
	}

	if len(live) > 0 {
		db.ckptMu.Lock()
		flushed := live[:0]
		for _, t := range live {
			if err := t.writer.CommitNoSync(nil, t.id); err != nil {
				db.failCommit(t, err)
				continue
			}
			flushed = append(flushed, t)
		}
		if len(flushed) > 0 {
			// The shared group-commit sync: one durability point for the
			// whole batch.
			if err := db.wal.Sync(nil); err != nil {
				for _, t := range flushed {
					db.failCommit(t, err)
				}
				flushed = flushed[:0]
			} else {
				db.commit.batches.Add(1)
				db.commit.batchTxns.Add(int64(len(flushed)))
			}
		}
		done := flushed[:0]
		for _, t := range flushed {
			var err error
			for _, p := range t.pendings {
				if err = p.Flush(nil); err != nil {
					break
				}
			}
			if err != nil {
				db.failCommit(t, err)
				continue
			}
			done = append(done, t)
		}
		db.ckptMu.Unlock()
		for _, t := range done {
			for _, p := range t.pendings {
				p.Release()
			}
			db.blobs.ApplyFrees(t.frees)
			t.releaseLocks()
			t.writer.Close()
			db.commit.release(t)
			if t.waitC != nil {
				t.waitC <- nil
			}
		}
	}
	for _, d := range drains {
		close(d)
	}
}

// prepareCommit finalizes a transaction's deferred blobs: hash from the
// pinned frames, refresh the tuple with the final state, append the Blob
// State record to the transaction's WAL writer (not yet flushed).
func (db *DB) prepareCommit(t *Txn) error {
	for _, d := range t.deferred {
		if err := db.blobs.FinishHash(nil, d.st); err != nil {
			return fmt.Errorf("hash: %w", err)
		}
		final := append([]byte{tagBlob}, d.st.Encode()...)
		d.rel.mu.Lock()
		d.rel.tree.Put(d.key, final)
		d.rel.mu.Unlock()
		if d.physlog {
			if err := streamBlobToWAL(t, db, d.st); err != nil {
				return err
			}
		}
		payload := heapPutPayload(d.rel.name, d.key, final)
		if _, err := t.writer.Append(nil, t.id, wal.RecBlobState, payload); err != nil {
			return err
		}
		if ci := d.rel.contentIdx; ci != nil {
			ci.put(d.key, d.st)
		}
	}
	return nil
}

// failCommit records a background commit failure and releases everything
// the transaction holds — locks, WAL buffer, byte budget — so the system
// cannot wedge; a CommitWait caller receives the error.
func (db *DB) failCommit(t *Txn, err error) {
	err = fmt.Errorf("core: async commit txn %d: %w", t.id, err)
	db.commit.mu.Lock()
	if db.commit.err == nil {
		db.commit.err = err
	}
	db.commit.mu.Unlock()
	t.releaseLocks()
	t.writer.Close()
	db.commit.release(t)
	if t.waitC != nil {
		t.waitC <- err
	}
}

// CommitBatchStats reports group-commit batching on the async pipeline:
// the number of shared WAL syncs issued for commit batches and the number
// of transactions those syncs covered. txns/flushes > 1 means concurrent
// commits are sharing durability syncs.
func (db *DB) CommitBatchStats() (flushes, txns int64) {
	if db.commit == nil {
		return 0, 0
	}
	return db.commit.batches.Load(), db.commit.batchTxns.Load()
}

// streamBlobToWAL feeds the blob's content into the WAL for the physlog
// baseline under async commit.
func streamBlobToWAL(t *Txn, db *DB, st *blob.State) error {
	var werr error
	err := db.blobs.Stream(nil, st, func(chunk []byte) bool {
		if e := t.writer.AppendBlobData(nil, t.id, chunk); e != nil {
			werr = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return werr
}
