package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

// Async commit pipeline.
//
// The paper's commit path (§III-C, §V-A) keeps I/O off the critical path:
// the WAL is group-committed and the extent flush is issued as asynchronous
// I/O. With AsyncCommit enabled the engine defers WAL flushing, the extent
// flush, and lock release to a background committer goroutine, and Commit
// returns once the transaction is enqueued (bounded queue: a slow device
// exerts backpressure). Hashing is no longer deferred: the streaming blob
// writer absorbs every chunk into the resumable SHA-256 while the data is
// still cache-hot, so Blob States arrive at the committer already final.
//
// This is real pipelining, not an accounting trick: on a multicore machine
// the committer overlaps with the workers exactly as the paper's group
// committer and I/O workers do. Durability semantics are those of group
// commit with asynchronous acknowledgement; tests that need a durability
// point call DB.DrainCommits, and callers that need a per-transaction
// durability ack (the network blob service) use Txn.CommitWait. Recovery
// semantics are unchanged — a transaction is committed iff its commit
// record (with the final, SHA-complete Blob State) is durable.
//
// The committer drains its queue into batches: every transaction's WAL
// records are flushed, then ONE device sync makes the whole batch durable
// — so concurrent writers share WAL syncs exactly as the paper's group
// commit shares them. Batch-size statistics are exposed through
// DB.CommitBatchStats.
type committer struct {
	ch   chan *Txn
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	once sync.Once
	busy atomic.Int64 // nanoseconds spent finishing commits

	batches   atomic.Int64 // shared WAL syncs issued for commit batches
	batchTxns atomic.Int64 // transactions covered by those syncs

	// Backpressure: the bytes pinned by in-flight commits are bounded so
	// deep pipelines cannot wedge the buffer pool. Workers block in Commit
	// when over budget; blocked time is tracked so the benchmark model can
	// separate worker CPU from pipeline waiting.
	flowMu      sync.Mutex
	flowCond    *sync.Cond
	inflight    int64
	budgetBytes int64
	blocked     atomic.Int64 // nanoseconds workers spent waiting on the pipeline

	// Deterministic-batch gate (crash simulation): while gated, the
	// committer parks after receiving the first transaction of a batch and
	// before draining the rest, so a test can enqueue an exact set of
	// transactions and release them as ONE batch with a known composition.
	gateMu   sync.Mutex
	gateCond *sync.Cond
	gated    bool

	// Pipelined extent write-back: after the shared WAL sync, a batch's
	// extent flush is submitted to the device queue and the committer moves
	// on, so batch N's WAL work overlaps batch N-1's write-back. At most
	// one flight is outstanding; flightMu guards the pointer.
	flightMu sync.Mutex
	flight   *commitFlight
}

// commitFlight is one batch's in-flight extent write-back. ticket covers
// the device writes; done closes after finalization — pins released, frees
// applied, locks released, durability acks delivered.
type commitFlight struct {
	ticket *storage.Ticket
	done   chan struct{}
}

// maxCommitBatch caps how many transactions one WAL sync may cover.
const maxCommitBatch = 32

// startCommitter launches the background committer (AsyncCommit mode).
func (db *DB) startCommitter() {
	db.commit = &committer{
		ch: make(chan *Txn, 64),
		// Half the buffer pool may be pinned by in-flight commits.
		budgetBytes: int64(db.opts.PoolPages) * int64(db.dev.PageSize()) / 2,
	}
	db.commit.flowCond = sync.NewCond(&db.commit.flowMu)
	db.commit.gateCond = sync.NewCond(&db.commit.gateMu)
	db.commit.wg.Add(1)
	go func() {
		defer db.commit.wg.Done()
		for {
			t, ok := <-db.commit.ch
			if !ok {
				return
			}
			// While HoldCommits is in effect, park before forming the batch
			// so every transaction enqueued under the hold lands in it.
			db.commit.waitGate()
			// Group commit: drain whatever else is already queued so the
			// whole batch shares one WAL sync.
			batch := append(make([]*Txn, 0, maxCommitBatch), t)
		drain:
			for len(batch) < maxCommitBatch {
				select {
				case t2, ok2 := <-db.commit.ch:
					if !ok2 {
						break drain
					}
					batch = append(batch, t2)
				default:
					break drain
				}
			}
			start := time.Now() //blobvet:allow real committer-busy accounting for the benchmark overlap model
			db.finishBatch(batch)
			db.commit.busy.Add(int64(time.Since(start))) //blobvet:allow real committer-busy accounting for the benchmark overlap model
		}
	}()
}

// enqueue hands a transaction to the committer, blocking while the
// pipeline holds more than its byte budget of pinned frames. If the
// transaction's context is cancelled before the handoff happens, enqueue
// gives up and returns the context error — a cancelled HTTP request stops
// waiting for pipeline capacity instead of leaking a blocked goroutine.
func (c *committer) enqueue(t *Txn) error {
	tb := t.pendingBytes()
	t.inflightBytes = tb
	start := time.Now() //blobvet:allow real backpressure-blocked accounting for the benchmark overlap model
	defer func() {
		if d := time.Since(start); d > time.Microsecond { //blobvet:allow real backpressure-blocked accounting for the benchmark overlap model
			c.blocked.Add(int64(d))
		}
	}()
	// Wake the cond-var wait below when the context dies; sync.Cond has no
	// native context support.
	stop := context.AfterFunc(t.ctx, func() {
		c.flowMu.Lock()
		c.flowCond.Broadcast()
		c.flowMu.Unlock()
	})
	defer stop()
	c.flowMu.Lock()
	for c.inflight > 0 && c.inflight+tb > c.budgetBytes {
		if err := t.ctx.Err(); err != nil {
			c.flowMu.Unlock()
			return err
		}
		c.flowCond.Wait()
	}
	c.inflight += tb
	c.flowMu.Unlock()
	// Re-check before the handoff: a select with both arms ready picks
	// randomly, and an already-cancelled transaction must never commit.
	if err := t.ctx.Err(); err != nil {
		c.release(t)
		return err
	}
	select {
	case c.ch <- t:
		return nil
	case <-t.ctx.Done():
		c.release(t) // undo the budget reservation
		return t.ctx.Err()
	}
}

// release returns a finished transaction's bytes to the budget. The byte
// count was snapshotted at enqueue time — the pending frames are already
// released by the time this runs.
func (c *committer) release(t *Txn) {
	c.flowMu.Lock()
	c.inflight -= t.inflightBytes
	c.flowCond.Broadcast()
	c.flowMu.Unlock()
}

// pendingBytes sums the frame bytes a transaction keeps pinned until its
// commit finishes.
func (t *Txn) pendingBytes() int64 {
	var n int64
	for _, p := range t.pendings {
		for _, f := range p.Frames {
			n += int64(f.NPages) * int64(t.db.dev.PageSize())
		}
	}
	return n
}

// waitGate parks the committer while a HoldCommits window is open.
func (c *committer) waitGate() {
	c.gateMu.Lock()
	for c.gated {
		c.gateCond.Wait()
	}
	c.gateMu.Unlock()
}

// HoldCommits pauses the async committer's batch formation: transactions
// enqueued while the hold is in effect accumulate in the queue instead of
// being committed one by one. ReleaseCommits lets them go as a single
// group-commit batch of known composition — the crash-simulation harness
// uses this to make batch boundaries deterministic. No-op without
// AsyncCommit. Every HoldCommits must be paired with ReleaseCommits
// (DrainCommits and CloseCommitter deadlock under an open hold).
func (db *DB) HoldCommits() {
	if db.commit == nil {
		return
	}
	db.commit.gateMu.Lock()
	db.commit.gated = true
	db.commit.gateMu.Unlock()
}

// ReleaseCommits ends a HoldCommits window.
func (db *DB) ReleaseCommits() {
	if db.commit == nil {
		return
	}
	db.commit.gateMu.Lock()
	db.commit.gated = false
	db.commit.gateCond.Broadcast()
	db.commit.gateMu.Unlock()
}

// CommitBlocked reports the cumulative time workers spent blocked on the
// commit pipeline (backpressure and drains). The benchmark model subtracts
// it from wall time to recover pure worker CPU.
func (db *DB) CommitBlocked() time.Duration {
	if db.commit == nil {
		return 0
	}
	return time.Duration(db.commit.blocked.Load())
}

// CommitterBusy reports the cumulative time the background committer has
// spent finishing commits. On a multicore host this work overlaps with the
// workers; the benchmark harness models that overlap explicitly so results
// are comparable on single-core machines.
func (db *DB) CommitterBusy() time.Duration {
	if db.commit == nil {
		return 0
	}
	return time.Duration(db.commit.busy.Load())
}

// CommitterErr reports the first background commit failure without
// draining the pipeline (nil without AsyncCommit, or while healthy). A
// non-nil result means the engine's durability path is poisoned — the
// shard router uses this to fence a crashed engine and fail its
// keyspace slice fast instead of queueing doomed work behind it.
func (db *DB) CommitterErr() error {
	if db.commit == nil {
		return nil
	}
	db.commit.mu.Lock()
	defer db.commit.mu.Unlock()
	return db.commit.err
}

// DrainCommits blocks until every enqueued commit has fully finished and
// returns the first background commit error, if any.
func (db *DB) DrainCommits() error {
	if db.commit == nil {
		return nil
	}
	start := time.Now() //blobvet:allow real drain-blocked accounting for the benchmark overlap model
	done := make(chan struct{})
	db.commit.ch <- &Txn{drain: done}
	<-done
	db.commit.blocked.Add(int64(time.Since(start))) //blobvet:allow real drain-blocked accounting for the benchmark overlap model
	db.commit.mu.Lock()
	defer db.commit.mu.Unlock()
	return db.commit.err
}

// CloseCommitter stops the pipeline (used by tests; safe to skip).
func (db *DB) CloseCommitter() error {
	if db.commit == nil {
		return nil
	}
	err := db.DrainCommits()
	db.commit.once.Do(func() { close(db.commit.ch) })
	db.commit.wg.Wait()
	return err
}

// finishBatch runs the deferred half of a batch of transactions on the
// committer: every transaction's WAL records are flushed, then one shared
// sync makes the whole batch durable, then the batch's extent write-back
// is *submitted* to the device queue and the committer returns to form the
// next batch — so batch N's WAL sync overlaps batch N-1's extent flush.
// §III-C ordering is preserved: a transaction's extents flush strictly
// after its own commit record is durable; the pipelining only overlaps the
// flush with the *next* batch's WAL work. Drain sentinels are acknowledged
// once every prior flight has fully finalized.
func (db *DB) finishBatch(batch []*Txn) {
	// Background work is charged to no meter: its cost reaches the
	// measurement only as real wall time through backpressure when the
	// committer is the bottleneck — exactly how the paper's group
	// committer behaves.
	var drains []chan struct{}
	live := batch[:0]
	for _, t := range batch {
		if t.drain != nil {
			drains = append(drains, t.drain)
			continue
		}
		live = append(live, t)
	}

	if len(live) > 0 {
		db.ckptMu.Lock()
		flushed := live[:0]
		for _, t := range live {
			if err := t.writer.CommitNoSync(nil, t.id); err != nil {
				db.failCommit(t, err)
				continue
			}
			flushed = append(flushed, t)
		}
		if len(flushed) > 0 {
			// The shared group-commit sync: one durability point for the
			// whole batch. The previous batch's extent write-back is still
			// in flight on the queue while this sync runs — that is the
			// pipeline overlap.
			if err := db.wal.Sync(nil); err != nil {
				for _, t := range flushed {
					db.failCommit(t, err)
				}
				flushed = flushed[:0]
			} else {
				db.commit.batches.Add(1)
				db.commit.batchTxns.Add(int64(len(flushed)))
			}
		}
		if len(flushed) > 0 {
			// Pipeline handoff: join the previous flight's device writes
			// (bounding the pipeline at one outstanding batch), then submit
			// this batch's flush and move on.
			db.joinCommitFlight()
			db.submitCommitFlush(flushed)
		}
		db.ckptMu.Unlock()
	}
	if len(drains) > 0 {
		db.drainCommitFlight()
		for _, d := range drains {
			close(d)
		}
	}
}

// submitCommitFlush hands a durable batch's extent write-back to the
// submission queue and finalizes the transactions when the writes land.
// Called with ckptMu held; on an inline queue the flush therefore runs
// under ckptMu exactly like the pre-pipeline committer, which is what
// keeps crashsim's op ordering unchanged.
func (db *DB) submitCommitFlush(txns []*Txn) {
	f := &commitFlight{done: make(chan struct{})}
	f.ticket = db.queue.SubmitFunc(nil, func(m *simtime.Meter) error {
		for _, t := range txns {
			for _, p := range t.pendings {
				if t.flushErr = p.Flush(m); t.flushErr != nil {
					break
				}
			}
		}
		return nil
	})
	db.commit.flightMu.Lock()
	db.commit.flight = f
	db.commit.flightMu.Unlock()
	go db.finalizeCommitFlight(f, txns)
}

// finalizeCommitFlight completes a batch once its write-back ticket
// signals: failed transactions are failCommit'ed; successful ones release
// their pinned frames, apply their frees, drop their locks, and deliver
// their durability acks (waitC last, so an acked caller observes every
// other effect). Runs off the committer goroutine — the committer is
// already forming the next batch.
func (db *DB) finalizeCommitFlight(f *commitFlight, txns []*Txn) {
	db.queue.Wait(f.ticket)
	for _, t := range txns {
		if t.flushErr != nil {
			db.failCommit(t, t.flushErr)
			continue
		}
		for _, p := range t.pendings {
			p.Release()
		}
		db.registerDedup(t.regs)
		db.deferFrees(t.id, t.frees)
		t.releaseLocks()
		db.endTxn(t.id)
		t.writer.Close()
		db.commit.release(t)
		if t.waitC != nil {
			t.waitC <- nil
		}
	}
	close(f.done)
}

// joinCommitFlight blocks until the outstanding flight's device writes
// have completed (finalization may still be running). It bounds the
// pipeline at one batch and doubles as the checkpoint writer's §III-C
// barrier: after a join, no committed-but-unflushed extents precede the
// current batch.
func (db *DB) joinCommitFlight() {
	if db.commit == nil {
		return
	}
	db.commit.flightMu.Lock()
	f := db.commit.flight
	db.commit.flightMu.Unlock()
	if f != nil {
		db.queue.Wait(f.ticket)
	}
}

// drainCommitFlight blocks until the outstanding flight has fully
// finalized — acks delivered, frees applied — the drain sentinel's strong
// barrier.
func (db *DB) drainCommitFlight() {
	if db.commit == nil {
		return
	}
	db.commit.flightMu.Lock()
	f := db.commit.flight
	db.commit.flightMu.Unlock()
	if f != nil {
		<-f.done
	}
}

// failCommit records a background commit failure and releases everything
// the transaction holds — pinned frames, locks, WAL buffer, byte budget —
// so the system cannot wedge; a CommitWait caller receives the error.
func (db *DB) failCommit(t *Txn, err error) {
	err = fmt.Errorf("core: async commit txn %d: %w", t.id, err)
	db.commit.mu.Lock()
	if db.commit.err == nil {
		db.commit.err = err
	}
	db.commit.mu.Unlock()
	for _, p := range t.pendings {
		p.ReleaseUnflushed()
	}
	t.releaseLocks()
	db.endTxn(t.id)
	t.writer.Close()
	db.commit.release(t)
	if t.waitC != nil {
		t.waitC <- err
	}
}

// CommitBatchStats reports group-commit batching on the async pipeline:
// the number of shared WAL syncs issued for commit batches and the number
// of transactions those syncs covered. txns/flushes > 1 means concurrent
// commits are sharing durability syncs.
func (db *DB) CommitBatchStats() (flushes, txns int64) {
	if db.commit == nil {
		return 0, 0
	}
	return db.commit.batches.Load(), db.commit.batchTxns.Load()
}
