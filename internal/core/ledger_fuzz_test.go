package core

import (
	"bytes"
	"testing"

	"blobdb/internal/storage"
)

// FuzzContentIndexDecode fuzzes the refcount ledger's checkpoint section
// parser (unmarshalLedger). The parser guards the recovery path: a
// checkpoint image is CRC-validated as a whole, but the section lengths
// and invariants (strictly increasing PIDs, counts >= 2) must hold for
// any byte string without panics or over-reads. Accepted inputs must
// round-trip through the canonical encoder byte-for-byte — the crash
// simulator replays schedules against recorded device-op hashes, so a
// non-canonical surviving encoding would break replay determinism.
func FuzzContentIndexDecode(f *testing.F) {
	f.Add(marshalLedger(0, nil))
	f.Add(marshalLedger(7, map[storage.PID]uint64{42: 2}))
	f.Add(marshalLedger(99, map[storage.PID]uint64{8: 3, 4096: 2, 1 << 40: 17}))
	// Trailing bytes: the checkpoint body continues after the section.
	f.Add(append(marshalLedger(3, map[storage.PID]uint64{5: 2}), 0xAA, 0xBB))
	f.Add([]byte{})                                           // too short
	f.Add(marshalLedger(1, nil)[:8])                          // truncated header
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255}) // huge count, no payload
	corrupt := marshalLedger(5, map[storage.PID]uint64{10: 2, 20: 4})
	corrupt[12+16] = 1 // second PID below the first: out of order
	f.Add(corrupt)
	low := marshalLedger(5, map[storage.PID]uint64{10: 2})
	low[12+8] = 1 // count 1 < 2 violates the sparse-ledger invariant
	f.Add(low)

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ledger, rest, err := unmarshalLedger(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest longer than input: %d > %d", len(rest), len(data))
		}
		for pid, count := range ledger {
			if count < 2 {
				t.Fatalf("accepted ledger entry %d with count %d < 2", pid, count)
			}
		}
		consumed := data[:len(data)-len(rest)]
		if again := marshalLedger(seq, ledger); !bytes.Equal(again, consumed) {
			t.Fatalf("accepted section is not canonical:\n consumed %x\n re-marshal %x", consumed, again)
		}
	})
}

// FuzzRefDeltaDecode fuzzes the RecRefDelta WAL payload parser the same
// way: arbitrary bytes must never panic, and accepted payloads must
// round-trip exactly through encodeRefDelta.
func FuzzRefDeltaDecode(f *testing.F) {
	f.Add(encodeRefDelta(1, nil))
	f.Add(encodeRefDelta(12, []refDelta{{PID: 77, Delta: +1}}))
	f.Add(encodeRefDelta(900, []refDelta{{PID: 4096, Delta: +1}, {PID: 4097, Delta: -1}}))
	f.Add([]byte{1, 2, 3})                            // short
	f.Add(append(encodeRefDelta(2, nil), 0x00))       // trailing byte
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0}) // declares 7 entries, none follow

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, entries, err := decodeRefDelta(data)
		if err != nil {
			return
		}
		if again := encodeRefDelta(seq, entries); !bytes.Equal(again, data) {
			t.Fatalf("accepted payload is not canonical:\n data %x\n re-encode %x", data, again)
		}
	})
}
