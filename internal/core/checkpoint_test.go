package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestCheckpointUnderConcurrentCommits: checkpoints racing committing
// writers must never capture a state that recovery cannot reproduce.
func TestCheckpointUnderConcurrentCommits(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("r")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var mu sync.Mutex
	committed := map[string][]byte{}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				content := bytes.Repeat([]byte{byte(w*16 + i%10)}, 4<<10)
				tx := db.Begin(nil)
				if err := putBlob(tx, "r", []byte(key), content); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				committed[key] = content
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		if err := db.WAL().Checkpoint(nil); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Crash and recover: everything acknowledged as committed must survive
	// regardless of which checkpoint interleavings happened.
	db2, _, err := recoverDB(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := db2.Begin(nil)
	defer tx.Commit()
	for key, want := range committed {
		got, err := tx.ReadBlobBytes("r", []byte(key))
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("%s lost or corrupted after checkpoint-racing recovery: %v", key, err)
		}
	}
}
