package core

import (
	"context"
	"encoding/binary"
	"fmt"

	"blobdb/internal/blob"
	"blobdb/internal/buffer"
	"blobdb/internal/simtime"
	"blobdb/internal/wal"
)

// Txn is a transaction. Create with DB.Begin or DB.BeginCtx; finish with
// exactly one of Commit or Abort. A Txn is single-goroutine.
//
// Durability follows §III-C: mutations stage Blob States in the WAL buffer
// and blob bytes in evict-protected frames; Commit first makes the WAL
// durable (group commit), then flushes the extents — so every blob byte
// reaches the device exactly once — and finally applies deferred extent
// frees. Streaming writers (CreateBlob/AppendBlob) relax the flush order
// for bounded memory; see blob.Writer.
type Txn struct {
	db     *DB
	id     uint64
	ctx    context.Context
	meter  *simtime.Meter
	writer *wal.Writer
	done   bool

	pendings []*blob.Pending
	frees    []blob.FreeSpec // applied at commit (deleted blobs, clones)
	undo     []undoOp
	locks    []string
	wrote    bool // any staged write (read-only txns skip commit I/O)

	sharedIncs []blob.FreeSpec // refcount increments staged by dedup (undone on abort)
	regs       []*blob.State   // states to publish in the content index on commit

	open []*blob.Writer // unsealed streaming writers; must close before Commit

	drain         chan struct{} // sentinel marker for DrainCommits
	waitC         chan error    // CommitWait: committer's durability ack
	inflightBytes int64         // pinned bytes, snapshotted at enqueue
	flushErr      error         // extent write-back failure, set on the flight
}

// undoOp restores a tree entry on abort.
type undoOp struct {
	rel      *Relation
	key      []byte
	hadOld   bool
	oldValue []byte
}

// Begin starts a transaction with a background context. meter may be nil;
// benchmarks pass a worker meter to account simulated I/O time.
func (db *DB) Begin(meter *simtime.Meter) *Txn {
	return db.BeginCtx(context.Background(), meter)
}

// BeginCtx starts a transaction bound to ctx: streaming blob writers stop
// when ctx is cancelled, a Commit enqueue under backpressure gives up
// (rolling the transaction back), and CommitWait stops waiting for its
// durability ack. A nil ctx means context.Background().
func (db *DB) BeginCtx(ctx context.Context, meter *simtime.Meter) *Txn {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &Txn{
		db:     db,
		id:     db.nextTxn.Add(1),
		ctx:    ctx,
		meter:  meter,
		writer: db.wal.NewWriter(),
	}
	// Register with the reclaimer: while this transaction lives, extents
	// freed by concurrent commits stay resident and unrecycled, so any
	// Blob State snapshot it captures keeps reading stable bytes.
	db.beginTxn(t.id)
	return t
}

// Context returns the context the transaction was started with.
func (t *Txn) Context() context.Context { return t.ctx }

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

func (t *Txn) check() error {
	if t.done {
		return ErrTxnDone
	}
	return nil
}

func (t *Txn) lock(rel string, key []byte) {
	lk := lockKey(rel, key)
	if t.db.locks.acquire(t.id, lk) {
		t.locks = append(t.locks, lk)
	}
}

// heapPutPayload frames a tuple write for the WAL.
func heapPutPayload(rel string, key, value []byte) []byte {
	out := make([]byte, 0, 2+len(rel)+4+len(key)+len(value))
	var u2 [2]byte
	binary.LittleEndian.PutUint16(u2[:], uint16(len(rel)))
	out = append(out, u2[:]...)
	out = append(out, rel...)
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(key)))
	out = append(out, u4[:]...)
	out = append(out, key...)
	out = append(out, value...)
	return out
}

func parseHeapPayload(p []byte) (rel string, key, value []byte, err error) {
	if len(p) < 2 {
		return "", nil, nil, fmt.Errorf("core: heap payload too short")
	}
	rl := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < rl+4 {
		return "", nil, nil, fmt.Errorf("core: heap payload truncated")
	}
	rel = string(p[:rl])
	p = p[rl:]
	kl := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < kl {
		return "", nil, nil, fmt.Errorf("core: heap payload key truncated")
	}
	return rel, p[:kl], p[kl:], nil
}

// applyTree applies a tree write in memory and records the undo entry.
func (t *Txn) applyTree(r *Relation, key, taggedValue []byte) {
	r.mu.Lock()
	// The tree never mutates stored value slices (Put swaps pointers), so
	// the undo log can reference the old slice directly.
	old, hadOld := r.tree.Get(key)
	if taggedValue == nil {
		r.tree.Delete(key)
	} else {
		r.tree.Put(key, taggedValue)
	}
	r.mu.Unlock()
	t.undo = append(t.undo, undoOp{rel: r, key: append([]byte(nil), key...), hadOld: hadOld, oldValue: old})
	t.wrote = true
}

// stageWrite applies a tree write in memory, records the undo entry, and
// logs the logical record.
func (t *Txn) stageWrite(r *Relation, key, taggedValue []byte, recType wal.RecType) error {
	t.applyTree(r, key, taggedValue)
	payload := heapPutPayload(r.name, key, taggedValue)
	if _, err := t.writer.AppendLSN(t.meter, t.id, recType, payload); err != nil {
		return err
	}
	return nil
}

// Put stores an inline (non-BLOB) value.
func (t *Txn) Put(relName string, key, value []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return err
	}
	t.lock(relName, key)
	if err := t.freeOldBlob(r, key); err != nil {
		return err
	}
	return t.stageWrite(r, key, append([]byte{tagInline}, value...), wal.RecHeapPut)
}

// Get returns the inline value for key.
func (t *Txn) Get(relName string, key []byte) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	v, ok := r.tree.Get(key)
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %q/%q: %w", relName, key, ErrKeyNotFound)
	}
	tag, payload, err := decodeValue(v)
	if err != nil {
		return nil, err
	}
	if tag != tagInline {
		return nil, fmt.Errorf("core: %q/%q: %w", relName, key, ErrNotBlob)
	}
	return append([]byte(nil), payload...), nil
}

// newBlobWriter wires a blob.Writer into the transaction: the seal hook
// frees the replaced blob (create mode), stages the tuple and its WAL
// Blob State record, and refreshes the indexes; the abort hook just
// unregisters the writer. base selects append mode, and resuming a base
// runs the dedup mutation gate here — NOT in the callers — so every
// append-mode writer deregisters the base's content-index entry (a grown
// blob no longer matches its old hash, and no later PUT may start
// sharing its about-to-diverge sequence) and clones the growth frontier
// when the sequence is shared instead of writing the co-owner's bytes in
// place.
func (t *Txn) newBlobWriter(ctx context.Context, relName string, key []byte, base *blob.State, stream bool) (*blob.Writer, error) {
	cloneFrontier := false
	if base != nil {
		cloneFrontier = t.db.dedupOnMutate(base)
	}
	return t.newBlobWriterOpts(ctx, relName, key, base, stream, cloneFrontier)
}

// newBlobWriterOpts is newBlobWriter for callers that already ran the
// dedup mutation gate on base and hold its clone-frontier verdict.
func (t *Txn) newBlobWriterOpts(ctx context.Context, relName string, key []byte, base *blob.State, stream, cloneFrontier bool) (*blob.Writer, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return nil, err
	}
	t.lock(relName, key)
	if ctx == nil {
		ctx = t.ctx
	}
	flushMeter := t.meter
	if t.db.commit != nil {
		// Async commit: flushes overlap with the workers, charged as
		// background work — exactly like the committer's commit-time flush.
		flushMeter = nil
	}
	var tee func([]byte) error
	if t.db.opts.PhysicalBlobLog {
		// Our.physlog baseline: the blob content also goes through the WAL.
		tee = func(chunk []byte) error {
			return t.writer.AppendBlobData(flushMeter, t.id, chunk)
		}
	}
	keyCopy := append([]byte(nil), key...)
	var w *blob.Writer
	w, err = t.db.blobs.NewWriter(blob.WriterOpts{
		Meter:         t.meter,
		FlushMeter:    flushMeter,
		Ctx:           ctx,
		Stream:        stream,
		Tee:           tee,
		Base:          base,
		CloneFrontier: cloneFrontier,
		OnAbort:       func() { t.dropWriter(w) },
		OnSeal: func(st *blob.State, p *blob.Pending, frees []blob.FreeSpec) error {
			t.dropWriter(w)
			if base == nil {
				// Content-addressed dedup: adopt an existing committed
				// blob's extent sequence when the content matches —
				// before the old blob at this key is scheduled for
				// freeing, so an identical overwrite shares it.
				if shared := t.tryDedup(st, p); shared != nil {
					st = shared
				}
				if err := t.freeOldBlob(r, keyCopy); err != nil {
					return err
				}
			} else {
				t.updateIndexesOnDelete(r, keyCopy, base)
			}
			t.pendings = append(t.pendings, p)
			t.frees = append(t.frees, frees...)
			if err := t.stageWrite(r, keyCopy, append([]byte{tagBlob}, st.Encode()...), wal.RecBlobState); err != nil {
				return err
			}
			t.updateIndexesOnPutState(r, keyCopy, st)
			t.regs = append(t.regs, st)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	t.open = append(t.open, w)
	return w, nil
}

func (t *Txn) dropWriter(w *blob.Writer) {
	for i, o := range t.open {
		if o == w {
			t.open = append(t.open[:i], t.open[i+1:]...)
			return
		}
	}
}

// LockKey takes the transaction's exclusive record lock on (rel, key)
// without staging a write. Plain reads don't lock — but a reader that
// must keep a blob's extents stable beyond an instant (streaming them to
// another engine during a reshard, say) locks the row first so a
// concurrent overwrite cannot commit and free the pinned extents
// mid-read. Released with the transaction's other locks at Commit/Abort.
func (t *Txn) LockKey(relName string, key []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	t.lock(relName, key)
	return nil
}

// CreateBlob opens a streaming writer that stores the bytes written to it
// as the BLOB column of key: extents are allocated incrementally from the
// tier table as bytes arrive, completed extents flush in the background
// while later ones fill (peak memory is O(one extent), not O(blob)), and
// the resumable SHA-256 absorbs every chunk. Close seals the Blob State
// and stages the tuple; Abort discards everything. ctx cancellation (nil:
// the transaction's context) stops the write mid-stream. The writer must
// be closed or aborted before the transaction commits.
func (t *Txn) CreateBlob(ctx context.Context, relName string, key []byte) (*blob.Writer, error) {
	return t.newBlobWriter(ctx, relName, key, nil, true)
}

// AppendBlob opens a streaming writer that appends to the BLOB at key
// (§III-D): the SHA-256 resumes from the stored intermediate state and
// only the new bytes are hashed and written — existing content is never
// reloaded.
func (t *Txn) AppendBlob(ctx context.Context, relName string, key []byte) (*blob.Writer, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	t.lock(relName, key)
	st, err := t.BlobState(relName, key)
	if err != nil {
		return nil, err
	}
	// Clone-on-divergence: while the sequence is shared, the growth
	// frontier (a partially filled last extent) must be cloned rather than
	// reopened in place — the co-owner keeps reading the old bytes. Whole
	// shared extents stay shared; only the diverging one is copied.
	cloneFrontier := t.db.dedupOnMutate(st)
	return t.newBlobWriterOpts(ctx, relName, key, st, true, cloneFrontier)
}

// freeOldBlob schedules the previous BLOB of key (if any) for commit-time
// freeing and removes it from indexes.
func (t *Txn) freeOldBlob(r *Relation, key []byte) error {
	r.mu.RLock()
	v, ok := r.tree.Get(key)
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	tag, payload, err := decodeValue(v)
	if err != nil || tag != tagBlob {
		return nil
	}
	st, err := blob.Decode(payload)
	if err != nil {
		return fmt.Errorf("core: stored blob state corrupt: %w", err)
	}
	// Deregister the content entry so no later PUT starts sharing a doomed
	// sequence. The frees stay unfiltered: whether each extent is freed or
	// merely dereferenced is decided when they APPLY (db.applyFrees), which
	// is what makes concurrent share-vs-delete races safe.
	t.db.dedupOnMutate(st)
	t.frees = append(t.frees, t.db.blobs.Delete(st)...)
	t.updateIndexesOnDelete(r, key, st)
	return nil
}

// BlobState returns the decoded Blob State for key.
func (t *Txn) BlobState(relName string, key []byte) (*blob.State, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	v, ok := r.tree.Get(key)
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %q/%q: %w", relName, key, ErrKeyNotFound)
	}
	tag, payload, err := decodeValue(v)
	if err != nil {
		return nil, err
	}
	if tag != tagBlob {
		return nil, fmt.Errorf("core: %q/%q: %w", relName, key, ErrNotBlob)
	}
	return blob.Decode(payload)
}

// ReadBlob looks up the Blob State, loads the extents, and invokes fn with
// the aliased view (the §III-E FUSE read path uses exactly this).
func (t *Txn) ReadBlob(relName string, key []byte, fn func(view *buffer.BlobView) error) error {
	st, err := t.BlobState(relName, key)
	if err != nil {
		return err
	}
	h, err := t.db.blobs.Read(t.meter, st)
	if err != nil {
		return err
	}
	defer h.Close(t.meter)
	return fn(h.View())
}

// ReadBlobBytes returns a copy of the BLOB content.
func (t *Txn) ReadBlobBytes(relName string, key []byte) ([]byte, error) {
	st, err := t.BlobState(relName, key)
	if err != nil {
		return nil, err
	}
	return t.db.blobs.ReadAll(t.meter, st)
}

// DeleteBlob removes the tuple and schedules its extents for reuse at
// commit.
func (t *Txn) DeleteBlob(relName string, key []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return err
	}
	t.lock(relName, key)
	r.mu.RLock()
	_, ok := r.tree.Get(key)
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: %q/%q: %w", relName, key, ErrKeyNotFound)
	}
	if err := t.freeOldBlob(r, key); err != nil {
		return err
	}
	return t.stageWrite(r, key, nil, wal.RecHeapDelete)
}

// UpdateBlob overwrites [off, off+len(data)) of the BLOB at key, choosing
// the delta or clone scheme (§III-D).
func (t *Txn) UpdateBlob(relName string, key []byte, off uint64, data []byte, scheme blob.UpdateScheme) error {
	if err := t.check(); err != nil {
		return err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return err
	}
	t.lock(relName, key)
	st, err := t.BlobState(relName, key)
	if err != nil {
		return err
	}
	if t.db.dedupOnMutate(st) {
		// The sequence is shared: delta updates mutate extent bytes in
		// place, which would rewrite the co-owner's content. Force the
		// clone scheme — only the affected extents are copied, the rest
		// stay shared (clone-on-divergence).
		scheme = blob.UpdateClone
	}
	t.updateIndexesOnDelete(r, key, st)
	res, err := t.db.blobs.Update(t.meter, st, off, data, scheme)
	if err != nil {
		return err
	}
	t.pendings = append(t.pendings, res.Pending)
	t.frees = append(t.frees, res.Frees...)
	if res.Delta != nil {
		if _, err := t.writer.AppendLSN(t.meter, t.id, wal.RecBlobDelta, res.Delta); err != nil {
			return err
		}
		t.wrote = true
	}
	if err := t.stageWrite(r, key, append([]byte{tagBlob}, res.State.Encode()...), wal.RecBlobState); err != nil {
		return err
	}
	t.updateIndexesOnPutState(r, key, res.State)
	t.regs = append(t.regs, res.State)
	return nil
}

// Scan iterates tuples with key >= from in order; fn receives the key and,
// for BLOB columns, the Blob State (value nil). Return false to stop.
func (t *Txn) Scan(relName string, from []byte, fn func(key []byte, inline []byte, st *blob.State) bool) error {
	if err := t.check(); err != nil {
		return err
	}
	r, err := t.db.Relation(relName)
	if err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var ferr error
	r.tree.Ascend(from, func(k, v []byte) bool {
		tag, payload, err := decodeValue(v)
		if err != nil {
			ferr = err
			return false
		}
		if tag == tagBlob {
			st, err := blob.Decode(payload)
			if err != nil {
				ferr = err
				return false
			}
			return fn(k, nil, st)
		}
		return fn(k, payload, nil)
	})
	return ferr
}

// Commit runs the §III-C pipeline: WAL durable first (the Blob State
// records), then the single extent flush, then deferred frees. It fails
// with ErrBlobWriterOpen while a streaming writer is unsealed, and in
// AsyncCommit mode a context cancellation during the backpressured
// enqueue rolls the transaction back and returns the context's error.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	if len(t.open) > 0 {
		return ErrBlobWriterOpen
	}
	t.done = true
	if !t.wrote {
		// Read-only transaction: nothing to make durable.
		t.writer.Close()
		t.releaseLocks()
		t.db.endTxn(t.id)
		return nil
	}
	if t.db.commit != nil {
		// AsyncCommit: hand the expensive half to the committer. Locks are
		// released there after the flush, preserving write-write ordering;
		// the enqueue blocks under byte-budget backpressure.
		if err := t.db.commit.enqueue(t); err != nil {
			// Cancelled before the handoff: the committer never saw the
			// transaction, so roll it back here.
			t.rollback()
			return err
		}
		return nil
	}
	defer t.writer.Close()
	t.db.ckptMu.Lock()
	err := t.writer.Commit(t.meter, t.id)
	if err == nil {
		for _, p := range t.pendings {
			if err = p.Flush(t.meter); err != nil {
				break
			}
		}
	}
	t.db.ckptMu.Unlock()
	if err != nil {
		// The commit did not complete: unpin the staged frames (and drop
		// their uncommitted page images) or the pool wedges on leaked
		// evict-protected pins while the caller handles the error.
		for _, p := range t.pendings {
			p.ReleaseUnflushed()
		}
		t.releaseLocks()
		t.db.endTxn(t.id)
		return fmt.Errorf("core: commit txn %d: %w", t.id, err)
	}
	for _, p := range t.pendings {
		p.Release()
	}
	t.db.registerDedup(t.regs)
	t.db.deferFrees(t.id, t.frees)
	t.releaseLocks()
	t.db.endTxn(t.id)
	return nil
}

// CommitWait commits like Commit but, in AsyncCommit mode, blocks until
// the transaction's group-commit batch is durable and its extents are
// flushed — the per-request durability acknowledgement a network PUT
// needs. Concurrent CommitWait callers still share WAL syncs: each waits
// only for its own batch, not for the pipeline to drain.
//
// If the transaction's context is cancelled while waiting, CommitWait
// returns the context error immediately: the commit still completes in
// the background (the ack channel is buffered, so the committer never
// blocks), but the caller — typically an HTTP handler whose client hung
// up — stops waiting and leaks no goroutine.
func (t *Txn) CommitWait() error {
	if t.db.commit == nil || !t.wrote || len(t.open) > 0 {
		return t.Commit() // synchronous commit is already a durability point
	}
	if err := t.check(); err != nil {
		return err
	}
	t.waitC = make(chan error, 1)
	if err := t.Commit(); err != nil {
		return err
	}
	select {
	case err := <-t.waitC:
		return err
	case <-t.ctx.Done():
		return t.ctx.Err()
	}
}

// CommitAsync commits like CommitWait but returns the durability ack
// channel instead of blocking on it, so one goroutine can enqueue several
// transactions into the same group-commit batch (under DB.HoldCommits) and
// collect the acks afterwards. The channel is buffered: the committer
// never blocks delivering the ack. Outside AsyncCommit mode (or for a
// read-only transaction) the commit happens synchronously and the returned
// channel already holds its result.
func (t *Txn) CommitAsync() (<-chan error, error) {
	if t.db.commit == nil || !t.wrote || len(t.open) > 0 {
		ch := make(chan error, 1)
		ch <- t.Commit()
		return ch, nil
	}
	if err := t.check(); err != nil {
		return nil, err
	}
	t.waitC = make(chan error, 1)
	if err := t.Commit(); err != nil {
		return nil, err
	}
	return t.waitC, nil
}

// Abort rolls the transaction back: open streaming writers are aborted,
// tree changes are undone in reverse, pending extents are discarded, and
// nothing (durable) reaches the device.
func (t *Txn) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	for len(t.open) > 0 {
		t.open[len(t.open)-1].Abort() // unregisters itself via OnAbort
	}
	t.rollback()
	return nil
}

// rollback undoes every staged effect of the transaction. The caller has
// already marked it done.
func (t *Txn) rollback() {
	defer t.writer.Close()
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		u.rel.mu.Lock()
		if u.hadOld {
			u.rel.tree.Put(u.key, u.oldValue)
		} else {
			u.rel.tree.Delete(u.key)
		}
		u.rel.mu.Unlock()
	}
	t.db.rebuildIndexTouched(t.undo)
	t.db.undoShares(t.id, t.sharedIncs)
	for _, p := range t.pendings {
		p.Discard(p.News)
	}
	t.releaseLocks()
	t.db.endTxn(t.id)
}

func (t *Txn) releaseLocks() {
	for i := len(t.locks) - 1; i >= 0; i-- {
		t.db.locks.release(t.locks[i])
	}
	t.locks = nil
}

// CrashBeforeExtentFlush is a failure-injection hook for tests and
// examples: it makes the transaction's WAL records (including the commit
// record) durable but "crashes" before the extent flush — the §III-C
// window where recovery must fail the transaction via SHA-256 validation.
// The in-memory DB is left inconsistent on purpose; recover from the
// device with Recover.
func CrashBeforeExtentFlush(t *Txn) error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	defer t.writer.Close()
	t.db.endTxn(t.id)
	return t.writer.Commit(t.meter, t.id)
}

// WriteAmplification reports device bytes written divided by logical blob
// bytes committed — used to assert the single-flush property end to end.
func (db *DB) WriteAmplification(logicalBytes int64) float64 {
	if logicalBytes == 0 {
		return 0
	}
	return float64(db.dev.Stats().BytesWritten()) / float64(logicalBytes)
}
