package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"blobdb/internal/blob"
	"blobdb/internal/btree"
	"blobdb/internal/extent"
	"blobdb/internal/sha256x"
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
	"blobdb/internal/wal"
)

// checkpoint image format (page-aligned in the checkpoint region):
//
//	magic u64 | totalLen u64 | crc32 u32 | pad to 24 | body
//	body: hwm u64 | ckptLSN u64 | relCount u32 |
//	      per relation: nameLen u16 name entryCount u64
//	                    entries: klen u32 k vlen u32 v
//	      ledger section: seq u64 | n u32 | n x (pid u64, count u64)
//
// ckptLSN is the highest WAL LSN assigned before the image was taken:
// recovery replays only records above it, and the segmented WAL truncates
// every segment at or below it once the image is durable. The ledger
// section (v3) carries the refcount ledger and its mutation-sequence
// fence; it is serialized AFTER the relation trees so that an increment
// whose tuple made the image is always in the image too (increments
// happen-before their tree put).
const ckptMagic = 0x424c4f42_434b5033 // "BLOBCKP3" (v3: refcount ledger section)

const ckptHeaderLen = 24

// The checkpoint region holds two slots written alternately. A checkpoint
// image is the only redo base for everything the truncated WAL no longer
// covers, so it must never be overwritten in place: a crash mid-write
// would tear the image AND leave the WAL truncated past it, losing every
// committed blob. (Found by crashsim; see the pinned regression schedule
// in internal/crashsim.) Recovery reads both slots and trusts the valid
// image with the higher checkpoint LSN.
const ckptSlots = 2

// ckptSlotGeom returns the device range of one checkpoint slot.
func (db *DB) ckptSlotGeom(slot int) (start storage.PID, pages uint64) {
	per := db.ckptPages / ckptSlots
	return db.ckptStart + storage.PID(uint64(slot)*per), per
}

func newContentHasher() *sha256x.Fast { return sha256x.BestHasher() }

// writeCheckpoint serializes all relations and the allocator high-water
// mark to the next checkpoint slot. Installed as the WAL's OnCheckpoint
// hook, so it runs with the WAL manager's lock held — which also
// serializes access to db.ckptNext.
func (db *DB) writeCheckpoint(m *simtime.Meter, ckptLSN uint64) error {
	// The pipelined committer may still be writing back the previous
	// batch's extents; the image must not capture a commit's tree change
	// without its extent flush (§III-C), so join the in-flight flush
	// first. Only the flight's device writes are awaited — finalization
	// can touch the WAL buffer pool, and this hook already runs under the
	// WAL manager's lock.
	db.joinCommitFlight()
	body := make([]byte, 0, 1<<16)
	var u8 [8]byte
	var u4 [4]byte
	var u2 [2]byte

	binary.LittleEndian.PutUint64(u8[:], uint64(db.alloc.HWM()))
	body = append(body, u8[:]...)
	binary.LittleEndian.PutUint64(u8[:], ckptLSN)
	body = append(body, u8[:]...)

	db.mu.RLock()
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	// Sorted order keeps checkpoint images byte-identical across runs —
	// the crash simulator replays schedules against recorded device-op
	// hashes, so map iteration order must not leak into the image.
	sort.Strings(names)
	rels := make([]*Relation, 0, len(names))
	for _, n := range names {
		rels = append(rels, db.rels[n])
	}
	db.mu.RUnlock()

	binary.LittleEndian.PutUint32(u4[:], uint32(len(rels)))
	body = append(body, u4[:]...)
	for i, r := range rels {
		binary.LittleEndian.PutUint16(u2[:], uint16(len(names[i])))
		body = append(body, u2[:]...)
		body = append(body, names[i]...)

		r.mu.RLock()
		binary.LittleEndian.PutUint64(u8[:], uint64(r.tree.Len()))
		body = append(body, u8[:]...)
		r.tree.Ascend(nil, func(k, v []byte) bool {
			binary.LittleEndian.PutUint32(u4[:], uint32(len(k)))
			body = append(body, u4[:]...)
			body = append(body, k...)
			binary.LittleEndian.PutUint32(u4[:], uint32(len(v)))
			body = append(body, u4[:]...)
			body = append(body, v...)
			return true
		})
		r.mu.RUnlock()
	}

	// Ledger section LAST, snapshotted strictly after the trees: an
	// increment happens-before its tuple's tree put, so a tuple captured
	// above already has its increments captured here — reconciliation can
	// then treat a replayed count below the tuple recount as an error.
	body = append(body, db.dedup.snapshotLedger()...)

	slot := db.ckptNext
	slotStart, slotPages := db.ckptSlotGeom(slot)
	total := ckptHeaderLen + len(body)
	pageSize := db.dev.PageSize()
	pages := (total + pageSize - 1) / pageSize
	if uint64(pages) > slotPages {
		return fmt.Errorf("core: checkpoint of %d pages exceeds slot of %d", pages, slotPages)
	}
	buf := make([]byte, pages*pageSize)
	binary.LittleEndian.PutUint64(buf[0:], ckptMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(body)))
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(body))
	copy(buf[ckptHeaderLen:], body)
	//blobvet:allow checkpoint images live outside the pool by design: dual-slot writes fenced by magic+CRC, not extent write-back
	if err := db.dev.WritePages(m, slotStart, pages, buf); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	db.ckptNext = (slot + 1) % ckptSlots
	return nil
}

// ckptImage is a parsed checkpoint image.
type ckptImage struct {
	rels      map[string]*btree.Tree
	hwm       storage.PID
	ckptLSN   uint64
	ledgerSeq uint64
	ledger    map[storage.PID]uint64
}

// readCheckpoint loads the newest valid checkpoint image from the two
// slots, or ok=false when neither slot holds a valid checkpoint. It also
// points db.ckptNext at the losing slot so the surviving image is never
// overwritten by the next checkpoint.
func (db *DB) readCheckpoint(m *simtime.Meter) (img *ckptImage, ok bool, err error) {
	best := -1
	for slot := 0; slot < ckptSlots; slot++ {
		si, sok, serr := db.readCheckpointSlot(m, slot)
		if serr != nil {
			return nil, false, serr
		}
		// Checkpoint LSNs only grow, so the higher one is the newer image.
		if sok && (!ok || si.ckptLSN > img.ckptLSN) {
			img, ok = si, true
			best = slot
		}
	}
	if ok {
		db.ckptNext = (best + 1) % ckptSlots
	}
	return img, ok, nil
}

// readCheckpointSlot parses one checkpoint slot. ok=false (with nil err)
// means the slot is empty or torn — both are normal after a crash.
func (db *DB) readCheckpointSlot(m *simtime.Meter, slot int) (img *ckptImage, ok bool, err error) {
	slotStart, slotPages := db.ckptSlotGeom(slot)
	pageSize := db.dev.PageSize()
	head := make([]byte, pageSize)
	if err := db.dev.ReadPages(m, slotStart, 1, head); err != nil {
		return nil, false, err
	}
	if binary.LittleEndian.Uint64(head[0:]) != ckptMagic {
		return nil, false, nil
	}
	bodyLen := int(binary.LittleEndian.Uint64(head[8:]))
	wantCRC := binary.LittleEndian.Uint32(head[16:])
	total := ckptHeaderLen + bodyLen
	pages := (total + pageSize - 1) / pageSize
	if bodyLen < 0 || uint64(pages) > slotPages {
		// A torn header can declare any length; treat it like a torn image
		// rather than failing recovery.
		return nil, false, nil
	}
	buf := make([]byte, pages*pageSize)
	if err := db.dev.ReadPages(m, slotStart, pages, buf); err != nil {
		return nil, false, err
	}
	body := buf[ckptHeaderLen : ckptHeaderLen+bodyLen]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, false, nil // torn checkpoint: ignore
	}

	rd := func(n int) ([]byte, error) {
		if len(body) < n {
			return nil, fmt.Errorf("core: checkpoint body truncated")
		}
		out := body[:n]
		body = body[n:]
		return out, nil
	}
	img = &ckptImage{rels: map[string]*btree.Tree{}}
	b, err := rd(8)
	if err != nil {
		return nil, false, err
	}
	img.hwm = storage.PID(binary.LittleEndian.Uint64(b))
	if b, err = rd(8); err != nil {
		return nil, false, err
	}
	img.ckptLSN = binary.LittleEndian.Uint64(b)
	b, err = rd(4)
	if err != nil {
		return nil, false, err
	}
	relCount := int(binary.LittleEndian.Uint32(b))
	for i := 0; i < relCount; i++ {
		if b, err = rd(2); err != nil {
			return nil, false, err
		}
		nameLen := int(binary.LittleEndian.Uint16(b))
		if b, err = rd(nameLen); err != nil {
			return nil, false, err
		}
		name := string(b)
		if b, err = rd(8); err != nil {
			return nil, false, err
		}
		count := int(binary.LittleEndian.Uint64(b))
		tree := btree.New(nil)
		for j := 0; j < count; j++ {
			if b, err = rd(4); err != nil {
				return nil, false, err
			}
			klen := int(binary.LittleEndian.Uint32(b))
			var k []byte
			if k, err = rd(klen); err != nil {
				return nil, false, err
			}
			if b, err = rd(4); err != nil {
				return nil, false, err
			}
			vlen := int(binary.LittleEndian.Uint32(b))
			var v []byte
			if v, err = rd(vlen); err != nil {
				return nil, false, err
			}
			tree.Put(k, v)
		}
		img.rels[name] = tree
	}
	img.ledgerSeq, img.ledger, body, err = unmarshalLedger(body)
	if err != nil {
		return nil, false, err
	}
	if len(body) != 0 {
		return nil, false, fmt.Errorf("core: checkpoint body has %d trailing bytes", len(body))
	}
	return img, true, nil
}

// RecoveryReport summarizes what Recover did.
type RecoveryReport struct {
	CommittedTxns    int // transactions with a durable commit record
	RedoneRecords    int // logical records reapplied
	ValidatedBlobs   int // Blob States whose content passed SHA-256 validation
	FailedBlobs      int // §III-C: states durable but content invalid — txn failed
	DroppedTuples    int // tuples removed because their blob failed validation
	LiveExtents      int // distinct extents owned by surviving blobs
	SharedExtents    int // extents referenced by more than one surviving tuple
	LedgerReconciled int // replayed ledger entries clamped to the tuple recount
	RecoveredHWM     storage.PID
	FromCheckpoint   bool
}

// recoverDB rebuilds the database state from the device after a crash: the
// checkpoint image is the redo base, committed WAL records above the
// checkpoint LSN are reapplied, and — the paper's Analysis-phase rule
// (§III-C) — every Blob State is validated against its SHA-256;
// transactions whose blob content did not make it to the device before the
// crash are treated as failed and undone. It backs RecoverDevice.
//
// The LSN filter is sound because a record's tree effect is applied (and
// therefore captured by any later checkpoint image) strictly before its
// LSN is assigned: a record at or below the checkpoint LSN is always
// covered by the image.
func recoverDB(o options, m *simtime.Meter) (*DB, *RecoveryReport, error) {
	db, err := open(o)
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{}

	img, ok, err := db.readCheckpoint(m)
	if err != nil {
		return nil, nil, err
	}
	rep.FromCheckpoint = ok
	var hwm storage.PID
	var ckptLSN, ledgerSeq uint64
	replayed := map[storage.PID]uint64{} // ledger as of image + eligible deltas
	if ok {
		hwm, ckptLSN, ledgerSeq = img.hwm, img.ckptLSN, img.ledgerSeq
		for name, tree := range img.rels {
			r := &Relation{name: name, tree: tree, semanticIdx: map[string]*SemanticIndex{}}
			db.rels[name] = r
		}
		for pid, c := range img.ledger {
			replayed[pid] = c
		}
	}

	// Analysis: scan the segmented log above the checkpoint LSN and find
	// committed transactions. The scan also resumes the manager's LSN and
	// segment-id counters past everything on the device.
	committed := map[uint64]bool{}
	var records []wal.Record
	_, err = db.wal.Recover(m, ckptLSN, func(r wal.Record) bool {
		if r.Type == wal.RecCommit {
			committed[r.TxnID] = true
		}
		records = append(records, r)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	rep.CommittedTxns = len(committed)

	// Blob validation (the paper's Analysis-phase SHA-256 check, §III-C):
	// a committed transaction whose *surviving* Blob State does not
	// validate against the device content is treated as failed — the crash
	// hit between its WAL flush and its extent flush — and ALL of its
	// records are undone (skipped from redo). Only the last writer per key
	// is validated: extents of superseded blob versions are legitimately
	// recycled by later transactions.
	type rk struct{ rel, key string }
	lastWriter := map[rk]int{} // record index of the final committed write per key
	for i, rec := range records {
		if !committed[rec.TxnID] {
			continue
		}
		switch rec.Type {
		case wal.RecHeapPut, wal.RecBlobState, wal.RecHeapDelete:
			relName, key, _, err := parseHeapPayload(rec.Payload)
			if err != nil {
				return nil, nil, fmt.Errorf("core: analyze LSN %d: %w", rec.LSN, err)
			}
			lastWriter[rk{relName, string(key)}] = i
		}
	}
	failed := map[uint64]bool{}
	for _, idx := range lastWriter {
		rec := records[idx]
		if rec.Type != wal.RecBlobState {
			continue
		}
		_, _, value, err := parseHeapPayload(rec.Payload)
		if err != nil || len(value) == 0 || value[0] != tagBlob {
			continue
		}
		st, err := blob.Decode(value[1:])
		if err != nil || !db.validateBlob(m, st) {
			failed[rec.TxnID] = true
			rep.FailedBlobs++
			// Validation read the (garbage) extents into the pool; their
			// page ranges are about to become free space, so evict them or
			// a future allocation of the same pages will collide with the
			// stale resident entries.
			if st != nil {
				db.dropStateFromPool(st)
			}
		} else {
			rep.ValidatedBlobs++
		}
	}

	// Redo: reapply logical records of committed, non-failed transactions
	// in log order.
	for _, rec := range records {
		if !committed[rec.TxnID] || failed[rec.TxnID] {
			continue
		}
		switch rec.Type {
		case wal.RecHeapPut, wal.RecBlobState, wal.RecHeapDelete:
			relName, key, value, err := parseHeapPayload(rec.Payload)
			if err != nil {
				return nil, nil, fmt.Errorf("core: redo LSN %d: %w", rec.LSN, err)
			}
			r, ok := db.rels[relName]
			if !ok {
				r = &Relation{name: relName, tree: btree.New(nil), semanticIdx: map[string]*SemanticIndex{}}
				db.rels[relName] = r
			}
			if rec.Type == wal.RecHeapDelete || len(value) == 0 {
				r.tree.Delete(key)
			} else {
				r.tree.Put(key, value)
			}
			rep.RedoneRecords++
		}
	}

	// Ledger replay: RecRefDelta batches of committed, non-failed
	// transactions, with seq above the image fence, in seq order. seq is
	// assigned under the ledger mutex, so it is the true mutation order
	// even where WAL append order raced. Apply-time decrements carry the
	// id of the transaction that staged the free, and the committed &&
	// !failed filter applies to them exactly as to increments: a failed
	// owner's tuple reverts to the old state that still references the
	// shared extent, so replaying its decrement would under-count the
	// surviving reference and arm a double-free.
	type refBatch struct {
		seq     uint64
		entries []refDelta
	}
	var batches []refBatch
	maxSeq := ledgerSeq
	for _, rec := range records {
		if rec.Type != wal.RecRefDelta {
			continue
		}
		if !committed[rec.TxnID] || failed[rec.TxnID] {
			continue
		}
		seq, entries, derr := decodeRefDelta(rec.Payload)
		if derr != nil {
			return nil, nil, fmt.Errorf("core: ledger replay LSN %d: %w", rec.LSN, derr)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= ledgerSeq {
			continue // covered by the checkpoint image
		}
		batches = append(batches, refBatch{seq: seq, entries: entries})
	}
	sort.Slice(batches, func(i, j int) bool { return batches[i].seq < batches[j].seq })
	for _, b := range batches {
		for _, e := range b.entries {
			v := replayed[e.PID]
			if v == 0 {
				v = 1 // sparse ledger: absent means one reference
			}
			if e.Delta > 0 {
				v++
			} else if v > 0 {
				v--
			}
			if v >= 2 {
				replayed[e.PID] = v
			} else {
				delete(replayed, e.PID)
			}
		}
	}

	// Sweep: every surviving Blob State (including checkpoint-sourced ones
	// not covered by the WAL pass) must hash-validate; stragglers are
	// dropped tuple-wise as a last resort. With dedup, several tuples may
	// reference the same extent, so the allocator rebuild counts each
	// DISTINCT extent once, and the pass doubles as the authoritative
	// recount of per-extent references.
	var live []extent.Extent
	seen := map[storage.PID]bool{}
	refs := map[storage.PID]uint64{}
	maxEnd := hwm
	tiers := db.alloc.Tiers()
	heapStart := storage.PID(db.opts.LogPages + db.opts.CkptPages)
	if maxEnd < heapStart {
		maxEnd = heapStart
	}
	for _, r := range db.rels {
		type drop struct {
			key []byte
			st  *blob.State
		}
		var drops []drop
		r.tree.Ascend(nil, func(k, v []byte) bool {
			tag, payload, err := decodeValue(v)
			if err != nil || tag != tagBlob {
				return true
			}
			st, err := blob.Decode(payload)
			if err != nil {
				drops = append(drops, drop{append([]byte(nil), k...), nil})
				return true
			}
			if !db.validateBlob(m, st) {
				drops = append(drops, drop{append([]byte(nil), k...), st})
				return true
			}
			add := func(pid storage.PID, pages uint64) {
				refs[pid]++
				if !seen[pid] {
					seen[pid] = true
					live = append(live, extent.Extent{PID: pid, Pages: pages})
				}
				if end := pid + storage.PID(pages); end > maxEnd {
					maxEnd = end
				}
			}
			for i, pid := range st.Extents {
				add(pid, tiers.Size(i))
			}
			if st.HasTail() {
				add(st.Tail.PID, st.Tail.Pages)
			}
			return true
		})
		for _, d := range drops {
			r.tree.Delete(d.key)
			rep.DroppedTuples++
			if d.st != nil {
				db.dropStateFromPool(d.st)
			}
		}
	}
	rep.LiveExtents = len(live)
	rep.RecoveredHWM = maxEnd
	if err := db.alloc.Rebuild(maxEnd, live); err != nil {
		return nil, nil, fmt.Errorf("core: rebuild allocator: %w", err)
	}

	// Reconcile the replayed ledger against the recount. The recount is
	// authoritative: a replayed count ABOVE it belongs to a transaction
	// that was in flight at the crash (its share or release never became
	// visible in the trees) and is clamped; a replayed count BELOW it
	// means a logged increment was lost — a double-free waiting to happen
	// — and recovery fails rather than continue on a corrupt ledger.
	ledger := map[storage.PID]uint64{}
	for pid, want := range refs {
		if want < 2 {
			continue
		}
		got := replayed[pid]
		if got == 0 {
			got = 1
		}
		if got < want {
			return nil, nil, fmt.Errorf("core: recover: extent %d referenced by %d tuples but ledger replayed only %d — refcount increment lost", pid, want, got)
		}
		if got != want {
			rep.LedgerReconciled++
		}
		ledger[pid] = want
	}
	for pid := range replayed {
		if refs[pid] < 2 {
			rep.LedgerReconciled++ // in-flight share/release at crash; entry dropped
		}
	}
	rep.SharedExtents = len(ledger)
	db.dedup.mu.Lock()
	db.dedup.ledger = ledger
	db.dedup.seq = maxSeq
	db.dedup.mu.Unlock()

	// Rebuild the content index from the surviving tuples in deterministic
	// (relation-name, key) order so post-recovery dedup decisions replay
	// identically in the crash simulator.
	relNames := make([]string, 0, len(db.rels))
	for name := range db.rels {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		db.rels[name].tree.Ascend(nil, func(_, v []byte) bool {
			tag, payload, err := decodeValue(v)
			if err != nil || tag != tagBlob {
				return true
			}
			if st, err := blob.Decode(payload); err == nil && shareable(st) {
				db.dedup.index[stateKey(st)] = st
			}
			return true
		})
	}

	// Finish with a checkpoint: the recovered state becomes the new redo
	// base and every replayed segment is truncated and erased.
	if err := db.wal.Checkpoint(m); err != nil {
		return nil, nil, fmt.Errorf("core: post-recovery checkpoint: %w", err)
	}
	return db, rep, nil
}

// dropStateFromPool evicts a dead blob's extents from the buffer pool so
// their page ranges can be reallocated without colliding with stale
// resident entries.
func (db *DB) dropStateFromPool(st *blob.State) {
	for _, pid := range st.Extents {
		db.pool.Drop(pid)
	}
	if st.HasTail() {
		db.pool.Drop(st.Tail.PID)
	}
}

// validateBlob reads the blob's extents from the device and checks the
// content against the Blob State's SHA-256.
func (db *DB) validateBlob(m *simtime.Meter, st *blob.State) bool {
	h := newContentHasher()
	err := db.blobs.Stream(m, st, func(chunk []byte) bool {
		h.Write(chunk)
		return true
	})
	if err != nil {
		return false
	}
	return h.Sum256() == st.SHA256
}
