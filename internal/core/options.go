package core

import (
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

// Option configures New and RecoverDevice — the only construction API.
// Each option documents the knob it sets; unset knobs take the defaults
// described on the options fields.
type Option func(*options)

// WithPoolPages sizes the buffer pool in pages (default: 1/4 of the
// device).
func WithPoolPages(n int) Option { return func(o *options) { o.PoolPages = n } }

// WithLogPages sizes the WAL region in pages (default: 1/16 of the
// device).
func WithLogPages(n uint64) Option { return func(o *options) { o.LogPages = n } }

// WithCkptPages sizes the checkpoint region in pages (default: 1/8 of the
// device).
func WithCkptPages(n uint64) Option { return func(o *options) { o.CkptPages = n } }

// WithHashTablePool selects the Our.ht baseline buffer manager (page-
// granular hash table) instead of the vmcache-style pool.
func WithHashTablePool(on bool) Option { return func(o *options) { o.HashTablePool = on } }

// WithPhysicalBlobLog selects the Our.physlog baseline: blob content is
// appended to the WAL in addition to the Blob State.
func WithPhysicalBlobLog(on bool) Option { return func(o *options) { o.PhysicalBlobLog = on } }

// WithTailExtents enables §III-A tail extents: minimal internal
// fragmentation, slower growth.
func WithTailExtents(on bool) Option { return func(o *options) { o.UseTailExtents = on } }

// WithAliasPages sizes each worker-local aliasing area in pages (default
// 1024 pages = 4 MB).
func WithAliasPages(n int) Option { return func(o *options) { o.WorkerLocalAliasPages = n } }

// WithWALBufferCap sizes per-transaction WAL buffers in bytes (default
// 10 MB).
func WithWALBufferCap(n int) Option { return func(o *options) { o.WALBufferCap = n } }

// WithCheckpointThreshold triggers a checkpoint after this many logged
// bytes (default: half the log region).
func WithCheckpointThreshold(n int64) Option { return func(o *options) { o.CheckpointThreshold = n } }

// WithAsyncCommit enables the background commit pipeline (asynccommit.go):
// WAL flush, extent flush, and lock release run on a committer goroutine
// and Commit returns at enqueue. Callers needing a per-transaction
// durability ack use Txn.CommitWait.
func WithAsyncCommit(on bool) Option { return func(o *options) { o.AsyncCommit = on } }

// WithQueueDepth sizes the device submission/completion queue that the
// buffer pool's miss loads, eviction write-back, and the pipelined
// committer's extent flush all route through (default
// storage.DefaultQueueDepth; values below 2 are clamped to 2).
func WithQueueDepth(n int) Option { return func(o *options) { o.QueueDepth = n } }

// WithInlineQueue makes the submission queue execute synchronously on the
// submitting goroutine instead of on completion goroutines. The pipelined
// code paths still run, but the device observes operations in caller order
// with no concurrency — crashsim selects this so FaultDevice's op-hash
// replay stays deterministic.
func WithInlineQueue(on bool) Option { return func(o *options) { o.InlineQueue = on } }

// New initializes a database over dev with functional options:
//
//	db, err := core.New(dev, core.WithPoolPages(1<<14), core.WithAsyncCommit(true))
func New(dev storage.Device, opts ...Option) (*DB, error) {
	o := options{Dev: dev}
	for _, f := range opts {
		f(&o)
	}
	return open(o)
}

// RecoverDevice rebuilds the database from dev after a crash, with the
// same functional options as New. m may be nil; benchmarks pass a meter
// to account recovery I/O.
func RecoverDevice(dev storage.Device, m *simtime.Meter, opts ...Option) (*DB, *RecoveryReport, error) {
	o := options{Dev: dev}
	for _, f := range opts {
		f(&o)
	}
	return recoverDB(o, m)
}
