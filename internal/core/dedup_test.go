package core

import (
	"bytes"
	"math/rand"
	"testing"

	"blobdb/internal/blob"
)

// putCommitted stores content under key in its own transaction.
func putCommitted(t *testing.T, db *DB, rel string, key, content []byte) {
	t.Helper()
	tx := db.Begin(nil)
	if err := putBlob(tx, rel, []byte(string(key)), content); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
}

func readCommitted(t *testing.T, db *DB, rel string, key []byte) []byte {
	t.Helper()
	tx := db.Begin(nil)
	got, err := tx.ReadBlobBytes(rel, key)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	return got
}

// TestDedupIdenticalPutsShareExtents is the PR's headline acceptance
// criterion: two identical 8 MiB PUTs under different keys consume ONE
// extent sequence, asserted via allocator byte accounting.
func TestDedupIdenticalPutsShareExtents(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("image")
	content := make([]byte, 8<<20)
	rand.New(rand.NewSource(9)).Read(content)

	putCommitted(t, db, "image", []byte("a"), content)
	after1 := db.Allocator().Stats()

	putCommitted(t, db, "image", []byte("b"), content)
	after2 := db.Allocator().Stats()

	if after2.LivePages != after1.LivePages {
		t.Errorf("second identical PUT allocated %d pages; want 0 (live %d -> %d)",
			after2.LivePages-after1.LivePages, after1.LivePages, after2.LivePages)
	}

	tx := db.Begin(nil)
	sa, err := tx.BlobState("image", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tx.BlobState("image", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if !sameSequence(sa, sb) {
		t.Errorf("states do not share one extent sequence:\n a=%+v\n b=%+v", sa, sb)
	}
	if !bytes.Equal(readCommitted(t, db, "image", []byte("a")), content) {
		t.Error("blob a corrupted")
	}
	if !bytes.Equal(readCommitted(t, db, "image", []byte("b")), content) {
		t.Error("blob b corrupted")
	}

	st := db.DedupStats()
	if st.Hits != 1 {
		t.Errorf("DedupStats.Hits = %d, want 1", st.Hits)
	}
	if st.SharedExtents == 0 || st.SharedBytes == 0 {
		t.Errorf("DedupStats = %+v, want shared extents and bytes", st)
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger: %v", err)
	}
}

// TestDedupDeleteSharedKeepsSurvivor deletes one of two sharers and checks
// the survivor stays byte-identical while zero shared pages return to the
// allocator; deleting the survivor then frees the sequence for real.
func TestDedupDeleteSharedKeepsSurvivor(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("image")
	content := make([]byte, 3<<20)
	rand.New(rand.NewSource(10)).Read(content)

	putCommitted(t, db, "image", []byte("a"), content)
	putCommitted(t, db, "image", []byte("b"), content)
	shared := db.Allocator().Stats()

	tx := db.Begin(nil)
	if err := tx.DeleteBlob("image", []byte("a")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	afterDel := db.Allocator().Stats()
	if afterDel.FreePages != shared.FreePages {
		t.Errorf("deleting a sharer freed %d pages; want 0",
			afterDel.FreePages-shared.FreePages)
	}
	if !bytes.Equal(readCommitted(t, db, "image", []byte("b")), content) {
		t.Error("survivor corrupted after sharer delete")
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger after sharer delete: %v", err)
	}

	tx2 := db.Begin(nil)
	if err := tx2.DeleteBlob("image", []byte("b")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)
	final := db.Allocator().Stats()
	if final.LivePages >= shared.LivePages {
		t.Errorf("deleting last owner freed nothing: live %d -> %d",
			shared.LivePages, final.LivePages)
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger after last delete: %v", err)
	}
}

// TestDedupCloneOnDivergence appends to one of two sharers: the append must
// clone the diverging frontier instead of mutating shared pages, leaving
// the other sharer byte-identical.
func TestDedupCloneOnDivergence(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	content := make([]byte, 300<<10)
	rand.New(rand.NewSource(11)).Read(content)
	extra := []byte("divergence tail")

	putCommitted(t, db, "doc", []byte("a"), content)
	putCommitted(t, db, "doc", []byte("b"), content)

	tx := db.Begin(nil)
	if err := growBlob(tx, "doc", []byte("b"), extra); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	if !bytes.Equal(readCommitted(t, db, "doc", []byte("a")), content) {
		t.Error("untouched sharer changed after divergent append")
	}
	want := append(append([]byte(nil), content...), extra...)
	if !bytes.Equal(readCommitted(t, db, "doc", []byte("b")), want) {
		t.Error("appended sharer has wrong content")
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger: %v", err)
	}
}

// TestDedupOverwriteShared overwrites one sharer in place (UpdateBlob) and
// checks the other sharer is untouched: the update must be forced onto the
// clone scheme.
func TestDedupOverwriteShared(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("doc")
	content := make([]byte, 200<<10)
	rand.New(rand.NewSource(12)).Read(content)

	putCommitted(t, db, "doc", []byte("a"), content)
	putCommitted(t, db, "doc", []byte("b"), content)

	mutated := append([]byte(nil), content...)
	for i := 0; i < 64; i++ {
		mutated[i] ^= 0xFF
	}
	tx := db.Begin(nil)
	if err := tx.UpdateBlob("doc", []byte("b"), 0, mutated[:64], blob.UpdateAuto); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	if !bytes.Equal(readCommitted(t, db, "doc", []byte("a")), content) {
		t.Error("untouched sharer changed after shared overwrite")
	}
	if !bytes.Equal(readCommitted(t, db, "doc", []byte("b")), mutated) {
		t.Error("overwritten sharer has wrong content")
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger: %v", err)
	}
}

// TestDedupAbortUndoesShare aborts a transaction whose PUT deduplicated
// against an existing blob: the refcount increment must be undone and the
// original owner must stay intact.
func TestDedupAbortUndoesShare(t *testing.T) {
	db := openTest(t, testOpts())
	db.CreateRelation("image")
	content := make([]byte, 150<<10)
	rand.New(rand.NewSource(13)).Read(content)

	putCommitted(t, db, "image", []byte("a"), content)
	before := db.DedupStats()

	tx := db.Begin(nil)
	if err := putBlob(tx, "image", []byte("b"), content); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	after := db.DedupStats()
	if after.SharedExtents != before.SharedExtents {
		t.Errorf("aborted share left %d ledger entries (was %d)",
			after.SharedExtents, before.SharedExtents)
	}
	if !bytes.Equal(readCommitted(t, db, "image", []byte("a")), content) {
		t.Error("original owner corrupted by aborted dedup")
	}
	if err := db.CheckLedger(); err != nil {
		t.Errorf("CheckLedger: %v", err)
	}
}

// TestDedupSurvivesRecovery crashes after two deduplicated PUTs and checks
// the sharing relationship, the ledger, and both payloads survive redo.
func TestDedupSurvivesRecovery(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("image")
	content := make([]byte, 1<<20)
	rand.New(rand.NewSource(14)).Read(content)

	putCommitted(t, db, "image", []byte("a"), content)
	putCommitted(t, db, "image", []byte("b"), content)

	db2, rep := crashAndRecover(t, o)
	if rep.SharedExtents == 0 {
		t.Errorf("recovery report shows no shared extents: %+v", rep)
	}
	if err := db2.CheckLedger(); err != nil {
		t.Errorf("CheckLedger after recovery: %v", err)
	}
	if !bytes.Equal(readCommitted(t, db2, "image", []byte("a")), content) {
		t.Error("blob a lost after crash")
	}
	if !bytes.Equal(readCommitted(t, db2, "image", []byte("b")), content) {
		t.Error("blob b lost after crash")
	}

	// The rebuilt content index must keep deduplicating: a third identical
	// PUT allocates nothing.
	before := db2.Allocator().Stats()
	putCommitted(t, db2, "image", []byte("c"), content)
	after := db2.Allocator().Stats()
	if after.LivePages != before.LivePages {
		t.Errorf("post-recovery PUT allocated %d pages; want 0",
			after.LivePages-before.LivePages)
	}
}

// TestDedupSurvivesCheckpointedRecovery is the same but forces a checkpoint
// first, so the ledger rides the checkpoint image rather than WAL redo.
func TestDedupSurvivesCheckpointedRecovery(t *testing.T) {
	o := testOpts()
	db := openTest(t, o)
	db.CreateRelation("image")
	content := make([]byte, 1<<20)
	rand.New(rand.NewSource(15)).Read(content)

	putCommitted(t, db, "image", []byte("a"), content)
	putCommitted(t, db, "image", []byte("b"), content)
	if err := db.WAL().Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint delete of one sharer exercises seq-fenced delta
	// replay on top of the imaged ledger.
	tx := db.Begin(nil)
	if err := tx.DeleteBlob("image", []byte("a")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	db2, _ := crashAndRecover(t, o)
	if err := db2.CheckLedger(); err != nil {
		t.Errorf("CheckLedger after checkpointed recovery: %v", err)
	}
	if !bytes.Equal(readCommitted(t, db2, "image", []byte("b")), content) {
		t.Error("survivor lost after checkpointed crash")
	}
}
