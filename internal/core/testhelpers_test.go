package core

// Writer-based stand-ins for the removed Txn.PutBlob/Txn.GrowBlob shims.
// They use the non-streaming writer mode (nothing touches the device until
// Commit, the original §III-C ordering) so the commit-protocol and
// recovery tests keep exercising the exact staging behavior the one-shot
// API had.

// putBlob stores content as the BLOB column of key in one call.
func putBlob(t *Txn, relName string, key, content []byte) error {
	w, err := t.newBlobWriter(t.ctx, relName, key, nil, false)
	if err != nil {
		return err
	}
	if _, err := w.Write(content); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// growBlob appends extra to the BLOB at key in one call.
func growBlob(t *Txn, relName string, key, extra []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	t.lock(relName, key)
	st, err := t.BlobState(relName, key)
	if err != nil {
		return err
	}
	w, err := t.newBlobWriter(t.ctx, relName, key, st, false)
	if err != nil {
		return err
	}
	if _, err := w.Write(extra); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}
