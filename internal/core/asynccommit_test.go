package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func asyncOpts() options {
	o := testOpts()
	o.AsyncCommit = true
	return o
}

func TestAsyncCommitRoundtrip(t *testing.T) {
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	rng := rand.New(rand.NewSource(1))
	want := map[string][]byte{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%02d", i)
		content := make([]byte, 1+rng.Intn(60<<10))
		rng.Read(content)
		want[key] = content
		tx := db.Begin(nil)
		if err := putBlob(tx, "r", []byte(key), content); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	for key, content := range want {
		tx := db.Begin(nil)
		got, err := tx.ReadBlobBytes("r", []byte(key))
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("%s: %v", key, err)
		}
		tx.Commit()
	}
}

func TestAsyncCommitReadYourOwnWrite(t *testing.T) {
	// A reader after Commit (but possibly before the committer finishes)
	// must still see the staged value; the record lock serializes
	// conflicting writers.
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx2 := db.Begin(nil)
	got, err := tx2.ReadBlobBytes("r", []byte("k"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("read-after-commit = %q, %v", got, err)
	}
	tx2.Commit()
}

func TestAsyncCommitSequentialReplaces(t *testing.T) {
	// Replacing the same key repeatedly exercises lock handoff between the
	// worker and the committer: each writer must block until the previous
	// commit's lock release.
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	for i := 0; i < 50; i++ {
		tx := db.Begin(nil)
		if err := putBlob(tx, "r", []byte("hot"), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(nil)
	got, _ := tx.ReadBlobBytes("r", []byte("hot"))
	tx.Commit()
	if string(got) != "v049" {
		t.Errorf("final value = %q, want v049", got)
	}
}

func TestAsyncCommitRecovery(t *testing.T) {
	// Transactions committed through the pipeline must survive a crash once
	// drained (the commit record carries the final SHA-complete state).
	o := asyncOpts()
	db := openTest(t, o)
	db.CreateRelation("r")
	content := bytes.Repeat([]byte{0x3C}, 50<<10)
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), content); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	// Crash: recover on the same device (synchronous mode for clarity).
	o2 := o
	o2.AsyncCommit = false
	db2, rep, err := recoverDB(o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValidatedBlobs != 1 || rep.FailedBlobs != 0 {
		t.Errorf("report = %+v", rep)
	}
	tx2 := db2.Begin(nil)
	got, err := tx2.ReadBlobBytes("r", []byte("k"))
	if err != nil || !bytes.Equal(got, content) {
		t.Errorf("async-committed blob lost: %v", err)
	}
	tx2.Commit()
}

func TestAsyncCommitAbortBeforeEnqueue(t *testing.T) {
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin(nil)
	if _, err := tx2.ReadBlobBytes("r", []byte("k")); err == nil {
		t.Error("aborted blob visible")
	}
	tx2.Commit()
	if live := db.Allocator().Stats().LivePages; live != 0 {
		t.Errorf("aborted allocation leaked %d pages", live)
	}
}

func TestCommitterBusyAccounting(t *testing.T) {
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	if db.CommitterBusy() != 0 {
		t.Error("busy should start at zero")
	}
	tx := db.Begin(nil)
	putBlob(tx, "r", []byte("k"), make([]byte, 100<<10))
	mustCommit(t, tx)
	if err := db.DrainCommits(); err != nil {
		t.Fatal(err)
	}
	if db.CommitterBusy() == 0 {
		t.Error("committer did work but reported zero busy time")
	}
}

func TestCommitWaitDurabilityAck(t *testing.T) {
	// CommitWait must not return until the committer has finished the txn:
	// the Blob State's SHA-256 is computed on the committer, so it must be
	// fully populated the instant CommitWait returns — no DrainCommits.
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), make([]byte, 200<<10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitWait(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin(nil)
	st, err := tx2.BlobState("r", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if st.SHA256 == [32]byte{} {
		t.Error("CommitWait returned before the committer finalized the Blob State hash")
	}
	tx2.Commit()
}

func TestCommitWaitConcurrentBatchStats(t *testing.T) {
	// Concurrent CommitWait writers all get durability acks, and the
	// pipeline accounts every one of them against shared WAL syncs.
	db := openTest(t, asyncOpts())
	defer db.CloseCommitter()
	db.CreateRelation("r")
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				tx := db.Begin(nil)
				if err := putBlob(tx, "r", []byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v")); err != nil {
					errs[w] = err
					return
				}
				if err := tx.CommitWait(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	flushes, txns := db.CommitBatchStats()
	if txns != writers*5 {
		t.Errorf("batched %d txns, want %d", txns, writers*5)
	}
	if flushes == 0 || flushes > txns {
		t.Errorf("implausible flush count %d for %d txns", flushes, txns)
	}
}

func TestCommitWaitOnSyncDBAndReadOnlyTxn(t *testing.T) {
	// Without a committer (sync mode) and for read-only txns, CommitWait
	// degrades to a plain Commit — no channel, no hang.
	db := openTest(t, testOpts())
	db.CreateRelation("r")
	tx := db.Begin(nil)
	if err := putBlob(tx, "r", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitWait(); err != nil {
		t.Fatal(err)
	}
	adb := openTest(t, asyncOpts())
	defer adb.CloseCommitter()
	ro := adb.Begin(nil)
	if err := ro.CommitWait(); err != nil {
		t.Errorf("read-only CommitWait: %v", err)
	}
}

func TestDrainCommitsOnSyncDB(t *testing.T) {
	db := openTest(t, testOpts()) // synchronous mode
	if err := db.DrainCommits(); err != nil {
		t.Errorf("DrainCommits on sync DB = %v", err)
	}
	if db.CommitterBusy() != 0 {
		t.Error("sync DB has no committer")
	}
}
