package core

import (
	"errors"
	"fmt"
	"io"

	"blobdb/internal/blob"
	"blobdb/internal/wal"
)

// Log-shipping apply: a read replica receives the primary's logical WAL
// records (RecHeapPut / RecBlobState / RecHeapDelete, grouped per committed
// transaction) and replays them into its own engine through the normal
// transaction API. The replica's WAL, allocator, and extent layout are
// entirely its own — only the logical tuple and BLOB *content* is
// replicated, which is exactly the paper's point that the Blob State is the
// sole blob-related record a logical log needs.
//
// BLOB content does not travel in the logical records (the Blob State is an
// extent map plus a SHA-256, meaningless on another device), so the applier
// pulls content out of band through a BlobFetch. The fetch returns the
// primary's *current* committed content for the key, which may already be
// newer than the version the record named: in that case the newer bytes are
// installed directly — legal under the staleness contract, because a newer
// committed version implies a later record that the replica will replay (or
// has just pre-applied) before its applied-LSN horizon passes that record's
// commit. For any key whose last committed update is at or below the
// replica's applied LSN the fetched content is the record's content, and the
// replicated ETag is byte-identical to the primary's.

// BlobFetch supplies BLOB content during a replicated apply. st is the Blob
// State the primary's record carried (its ETag names the version the record
// committed). The fetcher returns the content it can supply together with
// that content's ETag; it may be a newer committed version. A fetcher that
// no longer has any content for the key (deleted on the primary since)
// returns ErrBlobVanished.
type BlobFetch func(rel string, key []byte, st *blob.State) (etag string, rc io.ReadCloser, err error)

// ErrBlobVanished is returned by a BlobFetch when the primary no longer has
// any committed content for the key. The applier skips installing the
// record: a later replicated record deletes (or rewrites) the key.
var ErrBlobVanished = errors.New("core: replicated blob vanished on the primary")

// ApplyReplicated replays one committed primary transaction — its logical
// records in LSN order — as one transaction on this engine. Physical record
// types (RecBlobData, RecBlobDelta, RecFreeExtent) and control records are
// ignored: they describe the primary's device, not the logical state.
//
// The apply is idempotent: replaying a record over an already-applied state
// converges to the same tuples, so a resync that overlaps the record stream
// is safe.
func (db *DB) ApplyReplicated(recs []wal.Record, fetch BlobFetch) error {
	tx := db.Begin(nil)
	for _, rec := range recs {
		if err := tx.applyReplicatedRecord(rec, fetch); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.CommitWait()
}

func (t *Txn) applyReplicatedRecord(rec wal.Record, fetch BlobFetch) error {
	switch rec.Type {
	case wal.RecHeapPut, wal.RecBlobState, wal.RecHeapDelete:
	default:
		return nil // physical or control record: primary-device-local
	}
	relName, key, value, err := parseHeapPayload(rec.Payload)
	if err != nil {
		return fmt.Errorf("core: replicated record lsn %d: %w", rec.LSN, err)
	}
	if _, err := t.db.Relation(relName); err != nil {
		if _, cerr := t.db.CreateRelation(relName); cerr != nil && !errors.Is(cerr, ErrRelationExists) {
			return cerr
		}
	}

	if rec.Type == wal.RecHeapDelete || len(value) == 0 {
		// Deletes are idempotent on the replica: the key may already be
		// absent after a resync raced the record stream.
		if err := t.DeleteBlob(relName, key); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		return nil
	}

	tag, payload, err := decodeValue(value)
	if err != nil {
		return err
	}
	if tag == tagInline {
		return t.Put(relName, key, payload)
	}

	st, err := blob.Decode(payload)
	if err != nil {
		return fmt.Errorf("core: replicated blob state lsn %d: %w", rec.LSN, err)
	}
	etag, rc, err := fetch(relName, key, st)
	if errors.Is(err, ErrBlobVanished) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: fetch replicated blob %q/%q: %w", relName, key, err)
	}
	defer rc.Close()
	w, err := t.CreateBlob(t.ctx, relName, key)
	if err != nil {
		return err
	}
	if _, err := io.Copy(w, rc); err != nil {
		w.Abort()
		return fmt.Errorf("core: stream replicated blob %q/%q: %w", relName, key, err)
	}
	if err := w.Close(); err != nil {
		return err
	}
	// Transfer integrity: the installed content must hash to the ETag the
	// fetcher claimed to be sending.
	got, err := t.BlobState(relName, key)
	if err != nil {
		return err
	}
	if got.ETag() != etag {
		return fmt.Errorf("core: replicated blob %q/%q: installed etag %s, fetcher claimed %s",
			relName, key, got.ETag(), etag)
	}
	return nil
}
