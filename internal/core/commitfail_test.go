package core

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"blobdb/internal/blob"
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

// syncFailDev fails Sync while armed, turning the WAL durability point of
// a commit into an error without disturbing reads or writes.
type syncFailDev struct {
	storage.Device
	armed atomic.Bool
}

var errInjectedSync = errors.New("injected sync failure")

func (d *syncFailDev) Sync(m *simtime.Meter) error {
	if d.armed.Load() {
		return errInjectedSync
	}
	return d.Device.Sync(m)
}

// drainPool evicts everything evictable and returns the resident pages
// left behind — with no pins outstanding this must be zero.
func drainPool(t *testing.T, db *DB) int {
	t.Helper()
	if err := db.Pool().EvictAll(nil); err != nil {
		t.Fatalf("EvictAll after failed commit: %v", err)
	}
	return db.Pool().ResidentPages()
}

func writeBlob(t *testing.T, tx *Txn, rel string, key, content []byte) {
	t.Helper()
	w, err := tx.CreateBlob(tx.Context(), rel, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedCommitReleasesPins pins the commit-error unwind: a WAL sync
// failure must not leave the transaction's staged frames pinned and
// evict-protected, or the pool wedges for every later transaction. The
// leak is invisible to the framerelease analyzer (the pins live in
// Txn.pendings struct fields), so this test is its regression guard; the
// distilled intraprocedural shape is pinned in the analyzer's testdata.
func TestFailedCommitReleasesPins(t *testing.T) {
	dev := &syncFailDev{Device: storage.NewMemDevice(ps, 1<<15, nil)}
	db, err := New(dev, WithPoolPages(1<<12), WithLogPages(1<<11), WithCkptPages(1<<11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("durable? "), 3*ps/9)

	tx := db.Begin(nil)
	writeBlob(t, tx, "r", []byte("ok"), content)
	mustCommit(t, tx)

	// A delta update keeps its fixed, evict-protected frames in the
	// transaction's pending set until the commit-time flush — the shape
	// that leaks if the commit fails. (Streamed CreateBlob writers flush
	// and release during streaming, so they would not catch it.)
	dev.armed.Store(true)
	tx = db.Begin(nil)
	if err := tx.UpdateBlob("r", []byte("ok"), 0, []byte("PATCH"), blob.UpdateDelta); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, errInjectedSync) {
		t.Fatalf("Commit under failing sync: got %v, want injected failure", err)
	}
	dev.armed.Store(false)

	if n := drainPool(t, db); n != 0 {
		t.Fatalf("%d pages still resident after failed commit + EvictAll: the failed transaction leaked pinned frames", n)
	}

	// The pool must still be fully usable: commit and read back a blob.
	tx = db.Begin(nil)
	writeBlob(t, tx, "r", []byte("after"), content)
	mustCommit(t, tx)
	tx = db.Begin(nil)
	got, err := tx.ReadBlobBytes("r", []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch after recovery from failed commit")
	}
}

// TestFailedAsyncCommitReleasesPins covers the same unwind through the
// background committer's failCommit path.
func TestFailedAsyncCommitReleasesPins(t *testing.T) {
	dev := &syncFailDev{Device: storage.NewMemDevice(ps, 1<<15, nil)}
	db, err := New(dev, WithPoolPages(1<<12), WithLogPages(1<<11), WithCkptPages(1<<11),
		WithAsyncCommit(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("r"); err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("durable? "), 3*ps/9)

	tx := db.Begin(nil)
	writeBlob(t, tx, "r", []byte("ok"), content)
	if err := tx.CommitWait(); err != nil {
		t.Fatal(err)
	}

	dev.armed.Store(true)
	tx = db.Begin(nil)
	if err := tx.UpdateBlob("r", []byte("ok"), 0, []byte("PATCH"), blob.UpdateDelta); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitWait(); !errors.Is(err, errInjectedSync) {
		t.Fatalf("CommitWait under failing sync: got %v, want injected failure", err)
	}
	dev.armed.Store(false)

	if n := drainPool(t, db); n != 0 {
		t.Fatalf("%d pages still resident after failed async commit + EvictAll: failCommit leaked pinned frames", n)
	}
	if err := db.CloseCommitter(); !errors.Is(err, errInjectedSync) {
		t.Fatalf("CloseCommitter: got %v, want the sticky injected failure", err)
	}
}
