package core

import (
	"math"
	"sync"

	"blobdb/internal/blob"
)

// Deferred extent reclamation.
//
// Readers are lock-free (§III-H applies 2PL to writers only): a reader
// captures a Blob State snapshot from the tree and pins the referenced
// extents with no record lock held. A writer that replaces or deletes the
// blob must therefore not return the old extents to the allocator — or
// drop them from the buffer pool — while any transaction that could still
// hold the old snapshot is alive: the pool would panic on a pinned Drop,
// or worse, the allocator would recycle the extent under a reader that
// has yet to fix it, serving torn bytes.
//
// The reclaimer is an epoch scheme over transaction lifetimes. Every
// transaction registers at Begin with the current value of a logical
// clock; a committed free is queued tagged with the clock (which then
// advances) instead of being applied inline. A queued free becomes safe
// when no active transaction's begin tick is ≤ its tag: any transaction
// started after the tag began after the tree stopped referencing the old
// extents, so it cannot have captured the stale snapshot. Frees are
// applied in FIFO order at transaction end, under the reclaimer lock, so
// allocator mutations stay deterministic for crash-schedule replay.
//
// The single-flush durability story is unaffected: frees are in-memory
// bookkeeping (pool residency + allocator), and recovery rebuilds the
// allocator from the tree image, so frees deferred across a crash are
// simply rediscovered.
type reclaimer struct {
	mu      sync.Mutex
	clock   uint64            // advances once per deferral batch
	active  map[uint64]uint64 // txn id -> clock value at Begin
	pending []deferredFrees   // FIFO; clock tags are non-decreasing
}

// deferredFrees is one committed transaction's extent frees, applicable
// once every transaction begun at or before clock has ended. txn records
// the originating transaction: a free of a SHARED extent turns into a
// refcount decrement at apply time, and the decrement's WAL record must
// carry the owner's id — recovery may mark the owner failed (commit
// record durable, extent writes torn), revert its tuple to the old state
// that still references the extent, and must then NOT replay the
// decrement, or the reference survives with its count lost (an armed
// double-free).
type deferredFrees struct {
	clock uint64
	txn   uint64
	specs []blob.FreeSpec
}

func (r *reclaimer) init() { r.active = map[uint64]uint64{} }

// beginTxn registers a transaction as a potential stale-snapshot holder.
func (db *DB) beginTxn(id uint64) {
	r := &db.reclaim
	r.mu.Lock()
	r.active[id] = r.clock
	r.mu.Unlock()
}

// deferFrees queues a committed transaction's extent frees for
// reclamation. Call before endTxn so the committing transaction's own
// registration holds its frees back until it has fully ended.
func (db *DB) deferFrees(txn uint64, specs []blob.FreeSpec) {
	if len(specs) == 0 {
		return
	}
	r := &db.reclaim
	r.mu.Lock()
	r.pending = append(r.pending, deferredFrees{clock: r.clock, txn: txn, specs: specs})
	r.clock++
	r.mu.Unlock()
}

// endTxn deregisters a transaction and applies every queued free that no
// remaining active transaction predates. Applying under the reclaimer
// lock keeps the allocator's mutation order a pure function of the
// transaction end order — which the crash simulator replays exactly.
func (db *DB) endTxn(id uint64) {
	r := &db.reclaim
	r.mu.Lock()
	delete(r.active, id)
	horizon := uint64(math.MaxUint64)
	for _, tick := range r.active {
		if tick < horizon {
			horizon = tick
		}
	}
	n := 0
	for n < len(r.pending) && r.pending[n].clock < horizon {
		n++
	}
	ready := r.pending[:n:n]
	r.pending = r.pending[n:]
	for _, d := range ready {
		// Ledger-aware apply: frees of shared extents decrement the
		// refcount instead of returning the extent to the allocator.
		db.applyFrees(d.txn, d.specs)
	}
	r.mu.Unlock()
}

// ReclaimTick applies every deferred free batch that no active transaction
// predates, without waiting for a transaction to end. The defragmenter
// calls it between relocation rounds so the freed source extents reach the
// allocator (and ShrinkHWM) promptly even on an otherwise idle database.
// Returns the number of batches applied.
func (db *DB) ReclaimTick() int {
	r := &db.reclaim
	r.mu.Lock()
	horizon := uint64(math.MaxUint64)
	for _, tick := range r.active {
		if tick < horizon {
			horizon = tick
		}
	}
	n := 0
	for n < len(r.pending) && r.pending[n].clock < horizon {
		n++
	}
	ready := r.pending[:n:n]
	r.pending = r.pending[n:]
	for _, d := range ready {
		db.applyFrees(d.txn, d.specs)
	}
	r.mu.Unlock()
	return n
}

// ReclaimPending reports the number of deferred free batches not yet
// returned to the allocator (tests and /debug/vars).
func (db *DB) ReclaimPending() int {
	r := &db.reclaim
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}
