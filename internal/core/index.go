package core

import (
	"bytes"
	"fmt"
	"sync"

	"blobdb/internal/blob"
	"blobdb/internal/btree"
	"blobdb/internal/sha256x"
)

// ContentIndex is the §III-F Blob State index: a B-tree whose keys are
// encoded Blob States ordered by BLOB *content* through the incremental
// comparator — no BLOB copy is stored in the index (unlike SQLite's
// WITHOUT-ROWID approach), and arbitrary sizes are indexed (unlike
// MySQL/PostgreSQL prefix indexes).
type ContentIndex struct {
	db   *DB
	rel  *Relation
	mu   sync.RWMutex
	tree *btree.Tree

	// probeErr records comparator failures (comparators cannot return
	// errors through the btree interface).
	probeErr error
}

// index keys are tagged: a stored key is an encoded Blob State; a probe key
// carries the raw query bytes so lookups need no allocation on the device.
const (
	idxKeyState byte = 'S'
	idxKeyRaw   byte = 'R'
)

func encodeStateKey(st *blob.State) []byte {
	return append([]byte{idxKeyState}, st.Encode()...)
}

// encodeRawKey builds a probe key: the query's SHA-256 is computed once
// here so the comparator's equality shortcut never rehashes the query
// during tree descent.
func encodeRawKey(content []byte) []byte {
	h := sha256x.Sum(content)
	out := make([]byte, 0, 1+32+len(content))
	out = append(out, idxKeyRaw)
	out = append(out, h[:]...)
	return append(out, content...)
}

// decodeRawKey splits a probe key into its precomputed hash and content.
func decodeRawKey(k []byte) (sha [32]byte, content []byte) {
	copy(sha[:], k[1:33])
	return sha, k[33:]
}

// CreateContentIndex builds a Blob State index over the relation's BLOB
// column, populating it from existing tuples.
func (db *DB) CreateContentIndex(relName string) (*ContentIndex, error) {
	r, err := db.Relation(relName)
	if err != nil {
		return nil, err
	}
	idx := &ContentIndex{db: db, rel: r}
	idx.tree = btree.New(idx.compare)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.contentIdx != nil {
		return nil, fmt.Errorf("core: %q already has a content index", relName)
	}
	r.tree.Ascend(nil, func(k, v []byte) bool {
		tag, payload, err := decodeValue(v)
		if err != nil || tag != tagBlob {
			return true
		}
		st, err := blob.Decode(payload)
		if err != nil {
			return true
		}
		idx.tree.Put(encodeStateKey(st), k)
		return true
	})
	r.contentIdx = idx
	return idx, nil
}

// ContentIndexOf returns the relation's content index, if any.
func (db *DB) ContentIndexOf(relName string) (*ContentIndex, error) {
	r, err := db.Relation(relName)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.contentIdx == nil {
		return nil, fmt.Errorf("core: %q has no content index", relName)
	}
	return r.contentIdx, nil
}

// compare implements the incremental comparator (§III-F) over tagged index
// keys. State/state pairs use SHA-256 equality, embedded prefixes, then
// extent-incremental content comparison; raw probes compare query bytes
// against streamed content.
func (ci *ContentIndex) compare(a, b []byte) int {
	c, err := ci.compareErr(a, b)
	if err != nil && ci.probeErr == nil {
		ci.probeErr = err
	}
	return c
}

func (ci *ContentIndex) compareErr(a, b []byte) (int, error) {
	if len(a) == 0 || len(b) == 0 {
		return len(a) - len(b), nil
	}
	ta, tb := a[0], b[0]
	switch {
	case ta == idxKeyState && tb == idxKeyState:
		sa, err := blob.Decode(a[1:])
		if err != nil {
			return 0, err
		}
		sb, err := blob.Decode(b[1:])
		if err != nil {
			return 0, err
		}
		return ci.db.blobs.Compare(nil, sa, sb)
	case ta == idxKeyState && tb == idxKeyRaw:
		sa, err := blob.Decode(a[1:])
		if err != nil {
			return 0, err
		}
		sh, content := decodeRawKey(b)
		return ci.compareStateRaw(sa, content, sh)
	case ta == idxKeyRaw && tb == idxKeyState:
		sb, err := blob.Decode(b[1:])
		if err != nil {
			return 0, err
		}
		sh, content := decodeRawKey(a)
		c, err := ci.compareStateRaw(sb, content, sh)
		return -c, err
	default:
		_, ca := decodeRawKey(a)
		_, cb := decodeRawKey(b)
		return bytes.Compare(ca, cb), nil
	}
}

// compareStateRaw orders a stored BLOB against raw query bytes, streaming
// the stored content one extent at a time.
func (ci *ContentIndex) compareStateRaw(st *blob.State, raw []byte, rawSHA [32]byte) (int, error) {
	// Fast paths mirroring the state/state comparator: hash then prefix.
	if st.Size == uint64(len(raw)) && rawSHA == st.SHA256 {
		return 0, nil
	}
	pr := raw
	if len(pr) > blob.PrefixLen {
		pr = pr[:blob.PrefixLen]
	}
	pa := st.PrefixBytes()
	minP := len(pa)
	if len(pr) < minP {
		minP = len(pr)
	}
	if c := bytes.Compare(pa[:minP], pr[:minP]); c != 0 {
		return c, nil
	}
	if st.Size <= blob.PrefixLen || len(raw) <= blob.PrefixLen {
		return cmpLen(st.Size, uint64(len(raw))), nil
	}
	// Incremental content comparison against the query bytes.
	result := 0
	pos := 0
	err := ci.db.blobs.Stream(nil, st, func(chunk []byte) bool {
		n := len(chunk)
		if pos+n > len(raw) {
			n = len(raw) - pos
		}
		if n > 0 {
			if c := bytes.Compare(chunk[:n], raw[pos:pos+n]); c != 0 {
				result = c
				return false
			}
			pos += n
		}
		if n < len(chunk) {
			result = 1 // stored blob longer than query
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if result != 0 {
		return result, nil
	}
	return cmpLen(st.Size, uint64(len(raw))), nil
}

func cmpLen(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func hashOf(b []byte) [32]byte { return sha256x.Sum(b) }

// LookupExact returns the primary keys of BLOBs whose content equals query
// (point query via SHA-256, §III-F).
func (ci *ContentIndex) LookupExact(query []byte) ([][]byte, error) {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	probe := encodeRawKey(query)
	qh := sha256x.Sum(query)
	var out [][]byte
	ci.tree.Ascend(probe, func(k, v []byte) bool {
		if len(k) == 0 || k[0] != idxKeyState {
			return false
		}
		st, err := blob.Decode(k[1:])
		if err != nil {
			return false
		}
		if st.Size != uint64(len(query)) || st.SHA256 != qh {
			return false
		}
		out = append(out, append([]byte(nil), v...))
		return true
	})
	return out, ci.takeErr()
}

// Range invokes fn for each indexed BLOB with content in [from, to) in
// content order. nil to means unbounded.
func (ci *ContentIndex) Range(from, to []byte, fn func(primaryKey []byte, st *blob.State) bool) error {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	ci.tree.Ascend(encodeRawKey(from), func(k, v []byte) bool {
		st, err := blob.Decode(k[1:])
		if err != nil {
			return false
		}
		if to != nil {
			if c, _ := ci.compareErr(k, encodeRawKey(to)); c >= 0 {
				return false
			}
		}
		return fn(v, st)
	})
	return ci.takeErr()
}

func (ci *ContentIndex) takeErr() error {
	err := ci.probeErr
	ci.probeErr = nil
	return err
}

// Stats reports the index shape (Table III).
func (ci *ContentIndex) Stats() btree.Stats {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.tree.Stats()
}

func (ci *ContentIndex) put(key []byte, st *blob.State) {
	ci.mu.Lock()
	ci.tree.Put(encodeStateKey(st), key)
	ci.mu.Unlock()
}

func (ci *ContentIndex) del(st *blob.State) {
	ci.mu.Lock()
	ci.tree.Delete(encodeStateKey(st))
	ci.mu.Unlock()
}

// SemanticIndex implements §III-F expression indexes: tuples are indexed by
// a user-defined function of the BLOB content (e.g. classify(content)).
type SemanticIndex struct {
	name string
	fn   func(content []byte) []byte
	mu   sync.RWMutex
	tree *btree.Tree
}

// CreateSemanticIndex builds an expression index over the relation's BLOB
// content: CREATE INDEX name ON rel(fn(content)).
func (db *DB) CreateSemanticIndex(relName, idxName string, fn func(content []byte) []byte) (*SemanticIndex, error) {
	r, err := db.Relation(relName)
	if err != nil {
		return nil, err
	}
	idx := &SemanticIndex{name: idxName, fn: fn, tree: btree.New(nil)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.semanticIdx[idxName]; ok {
		return nil, fmt.Errorf("core: index %q already exists on %q", idxName, relName)
	}
	var buildErr error
	r.tree.Ascend(nil, func(k, v []byte) bool {
		tag, payload, err := decodeValue(v)
		if err != nil || tag != tagBlob {
			return true
		}
		st, err := blob.Decode(payload)
		if err != nil {
			buildErr = err
			return false
		}
		content, err := db.blobs.ReadAll(nil, st)
		if err != nil {
			buildErr = err
			return false
		}
		idx.insert(fn(content), k)
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	r.semanticIdx[idxName] = idx
	return idx, nil
}

// SemanticIndexOf returns a named semantic index.
func (db *DB) SemanticIndexOf(relName, idxName string) (*SemanticIndex, error) {
	r, err := db.Relation(relName)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.semanticIdx[idxName]
	if !ok {
		return nil, fmt.Errorf("core: no index %q on %q", idxName, relName)
	}
	return idx, nil
}

// semantic index entries: key = fnval \x00 primaryKey (duplicate fn values
// allowed), value = primaryKey.
func (si *SemanticIndex) insert(fnval, primary []byte) {
	k := append(append(append([]byte(nil), fnval...), 0), primary...)
	si.mu.Lock()
	si.tree.Put(k, primary)
	si.mu.Unlock()
}

func (si *SemanticIndex) remove(fnval, primary []byte) {
	k := append(append(append([]byte(nil), fnval...), 0), primary...)
	si.mu.Lock()
	si.tree.Delete(k)
	si.mu.Unlock()
}

// Lookup returns the primary keys whose fn(content) equals value — the
// paper's SELECT * FROM image WHERE classify(content)='cat'.
func (si *SemanticIndex) Lookup(value []byte) [][]byte {
	prefix := append(append([]byte(nil), value...), 0)
	var out [][]byte
	si.mu.RLock()
	defer si.mu.RUnlock()
	si.tree.Ascend(prefix, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false
		}
		out = append(out, append([]byte(nil), v...))
		return true
	})
	return out
}

// Len returns the number of index entries.
func (si *SemanticIndex) Len() int {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.tree.Len()
}

// ---- index maintenance hooks called by the transaction layer ----

func (t *Txn) updateIndexesOnPut(r *Relation, key []byte, st *blob.State, content []byte) {
	r.mu.RLock()
	ci := r.contentIdx
	sem := make([]*SemanticIndex, 0, len(r.semanticIdx))
	for _, s := range r.semanticIdx {
		sem = append(sem, s)
	}
	r.mu.RUnlock()
	if ci != nil {
		ci.put(key, st)
	}
	for _, s := range sem {
		s.insert(s.fn(content), key)
	}
}

// updateIndexesOnPutState is used when the caller has no content slice
// (grow/update); semantic indexes reread the BLOB.
func (t *Txn) updateIndexesOnPutState(r *Relation, key []byte, st *blob.State) {
	r.mu.RLock()
	ci := r.contentIdx
	hasSem := len(r.semanticIdx) > 0
	r.mu.RUnlock()
	if ci != nil {
		ci.put(key, st)
	}
	if hasSem {
		content, err := t.db.blobs.ReadAll(t.meter, st)
		if err != nil {
			return
		}
		r.mu.RLock()
		for _, s := range r.semanticIdx {
			s.insert(s.fn(content), key)
		}
		r.mu.RUnlock()
	}
}

func (t *Txn) updateIndexesOnDelete(r *Relation, key []byte, st *blob.State) {
	r.mu.RLock()
	ci := r.contentIdx
	hasSem := len(r.semanticIdx) > 0
	r.mu.RUnlock()
	if ci != nil {
		ci.del(st)
	}
	if hasSem {
		content, err := t.db.blobs.ReadAll(t.meter, st)
		if err != nil {
			return
		}
		r.mu.RLock()
		for _, s := range r.semanticIdx {
			s.remove(s.fn(content), key)
		}
		r.mu.RUnlock()
	}
}

// rebuildIndexTouched rebuilds the indexes of every relation touched by an
// aborted transaction. Index structures are non-transactional; rebuilding
// from the (already rolled back) relation restores consistency.
func (db *DB) rebuildIndexTouched(undo []undoOp) {
	seen := map[*Relation]bool{}
	for _, u := range undo {
		if seen[u.rel] {
			continue
		}
		seen[u.rel] = true
		db.rebuildIndexes(u.rel)
	}
}

func (db *DB) rebuildIndexes(r *Relation) {
	r.mu.Lock()
	ci := r.contentIdx
	sems := r.semanticIdx
	type entry struct {
		k  []byte
		st *blob.State
	}
	var entries []entry
	r.tree.Ascend(nil, func(k, v []byte) bool {
		tag, payload, err := decodeValue(v)
		if err != nil || tag != tagBlob {
			return true
		}
		st, err := blob.Decode(payload)
		if err != nil {
			return true
		}
		entries = append(entries, entry{append([]byte(nil), k...), st})
		return true
	})
	r.mu.Unlock()

	if ci != nil {
		ci.mu.Lock()
		ci.tree = btree.New(ci.compare)
		for _, e := range entries {
			ci.tree.Put(encodeStateKey(e.st), e.k)
		}
		ci.mu.Unlock()
	}
	for _, s := range sems {
		s.mu.Lock()
		s.tree = btree.New(nil)
		s.mu.Unlock()
		for _, e := range entries {
			content, err := db.blobs.ReadAll(nil, e.st)
			if err != nil {
				continue
			}
			s.insert(s.fn(content), e.k)
		}
	}
}
