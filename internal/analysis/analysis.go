// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics; object Facts flow
// from a package to its importers so cross-package properties (such as
// deprecation) can be checked modularly.
//
// The repository cannot vendor x/tools (the build must work from the Go
// toolchain alone), so this package provides the same contract with the
// same shapes. The API is deliberately a subset: if the tree ever gains an
// x/tools dependency, each analyzer ports by changing one import path.
//
// Drivers: cmd/blobvet runs the suite either standalone (via
// internal/analysis/driver, which loads packages with `go list`) or under
// `go vet -vettool` (via internal/analysis/unitchecker, which speaks the
// vet cfg/vetx protocol).
//
// # Suppression
//
// Every diagnostic can be suppressed by a comment on the reported line or
// the line directly above it:
//
//	//blobvet:allow <reason>
//
// The reason is mandatory — a bare //blobvet:allow is itself reported —
// so every intentional exception to an engine invariant is auditable
// in-tree. Suppression is applied by the drivers, not by analyzers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string

	// Doc is the help text: one summary line, a blank line, then detail.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the concrete Fact types the analyzer produces or
	// consumes. Registration is required for (gob) serialization under the
	// vet protocol.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an analyzer and collects its output.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it.
	Report func(Diagnostic)

	// ImportObjectFact copies the fact of the given type previously
	// exported for obj (by this analyzer, in obj's package) into fact and
	// reports whether one existed. obj may belong to any package in the
	// import graph.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportObjectFact associates fact with obj, which must belong to the
	// package being analyzed. Only package-level objects and methods of
	// package-level named types survive serialization.
	ExportObjectFact func(obj types.Object, fact Fact)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Fact is an analyzer-defined property of a types.Object, serialized
// across package boundaries. Implementations must be pointers to types
// with exported fields (they cross the vet protocol as gob).
type Fact interface {
	AFact() // marker method
}

// ObjectPath names a package-level object, or a method of a package-level
// named type, in a way that is stable across separate type-check sessions:
// "Name" for package-scope objects, "Type.Method" for methods. It returns
// "" for objects facts cannot follow (locals, fields, embedded forwards).
func ObjectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	if f, ok := obj.(*types.Func); ok {
		sig := f.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Parent() == obj.Pkg().Scope() {
				return named.Obj().Name() + "." + f.Name()
			}
		}
	}
	return ""
}

// FindObject resolves an ObjectPath inside pkg, or nil.
func FindObject(pkg *types.Package, path string) types.Object {
	if pkg == nil || path == "" {
		return nil
	}
	tname, mname, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(tname)
	if !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == mname {
			return m
		}
	}
	return nil
}

// allowPrefix is the suppression marker. The directive form (no space
// after //) follows the Go convention for machine-readable comments.
const allowPrefix = "//blobvet:allow"

// Suppressions indexes //blobvet:allow comments of one package.
type Suppressions struct {
	// allowed maps "file:line" to true for every line covered by a
	// reasoned allow comment (the comment's own line and the line below).
	allowed map[string]bool
	// bare holds the positions of reason-less allow comments.
	bare []token.Pos
}

// ScanSuppressions collects the allow comments of files.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{allowed: map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				pos := fset.Position(c.Pos())
				if reason == "" {
					s.bare = append(s.bare, c.Pos())
					continue
				}
				s.allowed[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				s.allowed[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic at pos is covered by a reasoned
// allow comment (same line as the comment, or the line below it).
func (s *Suppressions) Suppressed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return s.allowed[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
}

// BareAllows returns diagnostics for every reason-less //blobvet:allow:
// suppression without a recorded reason is itself an invariant violation.
func (s *Suppressions) BareAllows() []Diagnostic {
	var out []Diagnostic
	for _, pos := range s.bare {
		out = append(out, Diagnostic{
			Pos:     pos,
			Message: "//blobvet:allow requires a reason (//blobvet:allow <why this exception is sound>)",
		})
	}
	return out
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The blobvet analyzers check engine invariants; test files exercise the
// engine from outside them (fault injection, intentional leaks, wall-clock
// timing) and are exempt.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
