// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics; object Facts flow
// from a package to its importers so cross-package properties (such as
// deprecation) can be checked modularly.
//
// The repository cannot vendor x/tools (the build must work from the Go
// toolchain alone), so this package provides the same contract with the
// same shapes. The API is deliberately a subset: if the tree ever gains an
// x/tools dependency, each analyzer ports by changing one import path.
//
// Drivers: cmd/blobvet runs the suite either standalone (via
// internal/analysis/driver, which loads packages with `go list`) or under
// `go vet -vettool` (via internal/analysis/unitchecker, which speaks the
// vet cfg/vetx protocol).
//
// # Suppression
//
// Every diagnostic can be suppressed by a comment on the reported line or
// the line directly above it:
//
//	//blobvet:allow <reason>
//
// The reason is mandatory — a bare //blobvet:allow is itself reported —
// so every intentional exception to an engine invariant is auditable
// in-tree. Suppression is applied by the drivers, not by analyzers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string

	// Doc is the help text: one summary line, a blank line, then detail.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the concrete Fact types the analyzer produces or
	// consumes. Registration is required for (gob) serialization under the
	// vet protocol.
	FactTypes []Fact

	// Requires lists analyzers whose facts this analyzer consumes. Drivers
	// run requirements first (on every package, so their facts exist for
	// the current package too, not only for dependencies) and make their
	// fact stream readable through Pass.AllObjectFacts.
	Requires []*Analyzer
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an analyzer and collects its output.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it.
	Report func(Diagnostic)

	// ImportObjectFact copies the fact of the given type previously
	// exported for obj (by this analyzer, in obj's package) into fact and
	// reports whether one existed. obj may belong to any package in the
	// import graph.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportObjectFact associates fact with obj, which must belong to the
	// package being analyzed. Only package-level objects and methods of
	// package-level named types survive serialization.
	ExportObjectFact func(obj types.Object, fact Fact)

	// AllObjectFacts enumerates every object fact exported by the named
	// analyzer (which must appear in Analyzer.Requires, or be the analyzer
	// itself), across the current package and its whole import graph, in
	// deterministic order. Enumeration — rather than per-object import —
	// is what interprocedural consumers need: unexported functions of
	// dependency packages do not survive gc export data, so their facts
	// can only be reached by key, never through a types.Object.
	AllObjectFacts func(analyzer string) []ObjectFact
}

// An ObjectFact is one exported fact with its stable address: the
// defining package's import path and the object's ObjectPath within it.
type ObjectFact struct {
	PkgPath string
	ObjPath string
	Fact    Fact
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Fact is an analyzer-defined property of a types.Object, serialized
// across package boundaries. Implementations must be pointers to types
// with exported fields (they cross the vet protocol as gob).
type Fact interface {
	AFact() // marker method
}

// ObjectPath names a package-level object, or a method of a package-level
// named type, in a way that is stable across separate type-check sessions:
// "Name" for package-scope objects, "Type.Method" for methods. It returns
// "" for objects facts cannot follow (locals, fields, embedded forwards).
func ObjectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	if f, ok := obj.(*types.Func); ok {
		sig := f.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Parent() == obj.Pkg().Scope() {
				return named.Obj().Name() + "." + f.Name()
			}
		}
	}
	return ""
}

// FindObject resolves an ObjectPath inside pkg, or nil.
func FindObject(pkg *types.Package, path string) types.Object {
	if pkg == nil || path == "" {
		return nil
	}
	tname, mname, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(tname)
	if !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == mname {
			return m
		}
	}
	return nil
}

// allowPrefix is the suppression marker. The directive form (no space
// after //) follows the Go convention for machine-readable comments.
const allowPrefix = "//blobvet:allow"

// Suppressions indexes //blobvet:allow comments of one package.
type Suppressions struct {
	// allowed maps "file:line" to the reasoned allow entries covering that
	// line (the comment's own line and the line below).
	allowed map[string][]*allowEntry
	// entries holds every reasoned allow in scan order.
	entries []*allowEntry
	// bare holds the positions of reason-less allow comments.
	bare []token.Pos
}

// allowEntry is one reasoned //blobvet:allow comment, tracked so the
// driver can audit allows that no longer suppress anything.
type allowEntry struct {
	pos  token.Pos
	test bool // in a _test.go file: exempt from the stale audit
	used bool // suppressed at least one diagnostic this run
}

// ScanSuppressions collects the allow comments of files.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{allowed: map[string][]*allowEntry{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				pos := fset.Position(c.Pos())
				if reason == "" {
					s.bare = append(s.bare, c.Pos())
					continue
				}
				e := &allowEntry{pos: c.Pos(), test: IsTestFile(fset, c.Pos())}
				s.entries = append(s.entries, e)
				for _, key := range []string{
					fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
					fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1),
				} {
					s.allowed[key] = append(s.allowed[key], e)
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic at pos is covered by a reasoned
// allow comment (same line as the comment, or the line below it), and
// marks the covering allows used for the stale audit.
func (s *Suppressions) Suppressed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	entries := s.allowed[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
	for _, e := range entries {
		e.used = true
	}
	return len(entries) > 0
}

// Stale returns diagnostics for every reasoned allow (outside _test.go
// files) that suppressed nothing: a dead allow either outlived the code
// it excused or documents an invariant the analyzers no longer check —
// both rot the in-tree exception catalog. Call it after every analyzer
// has run.
func (s *Suppressions) Stale() []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if e.used || e.test {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     e.pos,
			Message: "stale //blobvet:allow: no analyzer reports a diagnostic here anymore; delete the comment (or restore the invariant it excused)",
		})
	}
	return out
}

// BareAllows returns diagnostics for every reason-less //blobvet:allow:
// suppression without a recorded reason is itself an invariant violation.
func (s *Suppressions) BareAllows() []Diagnostic {
	var out []Diagnostic
	for _, pos := range s.bare {
		out = append(out, Diagnostic{
			Pos:     pos,
			Message: "//blobvet:allow requires a reason (//blobvet:allow <why this exception is sound>)",
		})
	}
	return out
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The blobvet analyzers check engine invariants; test files exercise the
// engine from outside them (fault injection, intentional leaks, wall-clock
// timing) and are exempt.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
