// Package unitchecker makes the blobvet analyzers runnable under
// `go vet -vettool=<blobvet>`: the go command invokes the tool once per
// package with a JSON config file naming the sources, the export data of
// every dependency, and the fact (.vetx) files of analyzed dependencies.
//
// The protocol implemented here is the one cmd/go speaks to
// golang.org/x/tools/go/analysis/unitchecker:
//
//   - `blobvet -V=full` prints a content-hashed version line (handled in
//     cmd/blobvet) so the build cache can key on the tool binary;
//   - `blobvet <flags> <pkg>.cfg` analyzes one package, writes its facts
//     to cfg.VetxOutput, and prints diagnostics to stderr (exit 2) or,
//     with -json, a JSON object to stdout (exit 0).
package unitchecker

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/driver"
)

// Config is the JSON schema of the cfg file cmd/go passes to vet tools.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the single package described by cfgFile and exits the
// process with the protocol's status code.
func Run(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	// Register fact types over the Requires closure: a listed analyzer's
	// summary producer ships facts through the same vetx files.
	for _, a := range driver.Expand(analyzers) {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}

	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err))
	}

	// cmd/go compiles test variants under decorated import paths like
	// "pkg [pkg.test]"; analyzers scope by the real path.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}

	// Dependency resolution: source import path -> export data file,
	// honoring the vendor/ImportMap indirection.
	exports := map[string]string{}
	for canon, file := range cfg.PackageFile {
		exports[canon] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}

	facts := driver.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		driver.ReadFactsFile(facts, vetx)
	}

	fset := token.NewFileSet()
	loader := driver.NewSourceLoader(fset, exports)
	var diags []driver.Diag
	if len(cfg.GoFiles) > 0 {
		pkg, err := loader.Load(pkgPath, cfg.Dir, cfg.GoFiles)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatal(err)
		}
		diags, err = driver.RunPackage(pkg, analyzers, facts)
		if err != nil {
			fatal(err)
		}
	}

	if cfg.VetxOutput != "" {
		if err := driver.WriteFactsFile(facts, cfg.VetxOutput); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	if jsonOut {
		printJSON(cfg.ID, diags)
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [blobvet:%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "blobvet: %v\n", err)
	os.Exit(1)
}

// printJSON emits the go vet -json schema:
// {"pkgid": {"analyzer": [{"posn": "...", "message": "..."}]}}.
func printJSON(pkgID string, diags []driver.Diag) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: d.Message})
	}
	names := make([]string, 0, len(byAnalyzer))
	for name := range byAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	out := map[string]map[string][]jsonDiag{pkgID: {}}
	for _, name := range names {
		out[pkgID][name] = byAnalyzer[name]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}
