// Package cfg builds a small intraprocedural control-flow graph over Go
// AST function bodies, for dataflow analyzers (framerelease, lockio, and
// the summary pass, whose must-held lock fixpoint over these blocks is
// what every exported effect fact's Held sets are computed against).
//
// It models exactly the control constructs the engine uses: blocks, if/else,
// for, range, switch (tagged and tagless), type switch, select, labeled
// break/continue, fallthrough, return, and panic. Edges carry the branch
// guard that was taken (`Guards`), letting analyses refine state along
// condition outcomes — the property framerelease needs to understand
// "if err != nil { return err }" and tagless-switch error triage.
//
// goto is not modeled: New returns nil for a body containing one and
// analyzers skip the function (the engine has none; conservative silence
// beats wrong edges). The summary pass falls back to a flow-insensitive
// walk with empty held sets in that case, so its facts degrade to
// "calls, no lock context" rather than disappearing.
package cfg

import "go/ast"

// A Guard records that an edge is taken only when Cond evaluates to Value.
type Guard struct {
	Cond  ast.Expr
	Value bool
}

// An Edge is one control transfer.
type Edge struct {
	To     *Block
	Guards []Guard
}

// A Block is a maximal straight-line sequence of nodes. Nodes holds
// statements in execution order; branch conditions appear as bare
// ast.Expr nodes at the end of the block that tests them.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// A CFG is the graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is the single synthetic block reached by returns and by
	// falling off the end of the body. It has no nodes or successors.
	Exit   *Block
	Blocks []*Block
	// Defers collects every defer statement in source order; they run at
	// Exit (and on panic paths, which the graph does not model).
	Defers []*ast.DeferStmt
}

type loopTarget struct {
	label      string
	brk, cont  *Block
	isSwitchOr bool // switch/select: a bare break targets it, continue does not
}

type builder struct {
	cfg     *CFG
	loops   []loopTarget
	hasGoto bool
}

// New builds the CFG of body, or returns nil if body contains a goto.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	entry := b.newBlock()
	b.cfg.Entry = entry
	b.cfg.Exit = b.newBlock()
	end := b.stmtList(body.List, entry)
	if end != nil {
		b.edge(end, b.cfg.Exit, nil)
	}
	if b.hasGoto {
		return nil
	}
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, guards []Guard) {
	from.Succs = append(from.Succs, Edge{To: to, Guards: guards})
}

// stmtList threads the statements through cur, returning the live block
// where control continues, or nil if control never falls through.
func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/break; still scan for gotos so
			// we stay honest about bailing.
			ast.Inspect(s, func(n ast.Node) bool {
				if br, ok := n.(*ast.BranchStmt); ok && br.Tok.String() == "goto" {
					b.hasGoto = true
				}
				return true
			})
			continue
		}
		cur = b.stmt(s, cur, "")
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block, label string) *Block {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB, []Guard{{s.Cond, true}})
		thenEnd := b.stmtList(s.Body.List, thenB)
		var elseEnd *Block
		var join *Block
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB, []Guard{{s.Cond, false}})
			elseEnd = b.stmt(s.Else, elseB, "")
		}
		if thenEnd != nil || elseEnd != nil || s.Else == nil {
			join = b.newBlock()
		}
		if s.Else == nil {
			b.edge(cur, join, []Guard{{s.Cond, false}})
		}
		if thenEnd != nil {
			b.edge(thenEnd, join, nil)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join, nil)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head, nil)
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head, nil)
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, []Guard{{s.Cond, true}})
			b.edge(head, after, []Guard{{s.Cond, false}})
		} else {
			b.edge(head, body, nil)
		}
		b.loops = append(b.loops, loopTarget{label: label, brk: after, cont: post})
		bodyEnd := b.stmtList(s.Body.List, body)
		b.loops = b.loops[:len(b.loops)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, post, nil)
		}
		return after

	case *ast.RangeStmt:
		// The range subject and per-iteration variables are represented by
		// the RangeStmt node itself, placed at the loop head.
		head := b.newBlock()
		b.edge(cur, head, nil)
		body := b.newBlock()
		after := b.newBlock()
		// The per-iteration assignment of Key/Value happens at the head.
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body, nil)
		b.edge(head, after, nil)
		b.loops = append(b.loops, loopTarget{label: label, brk: after, cont: head})
		bodyEnd := b.stmtList(s.Body.List, body)
		b.loops = b.loops[:len(b.loops)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, head, nil)
		}
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(s, cur, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.clauses(s.Body.List, cur, label, nil)

	case *ast.SelectStmt:
		return b.clauses(s.Body.List, cur, label, nil)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.cfg.Exit, nil)
		return nil

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "goto":
			b.hasGoto = true
			return nil
		case "fallthrough":
			// Handled structurally by switchStmt; a stray one ends the block.
			return nil
		case "break":
			for i := len(b.loops) - 1; i >= 0; i-- {
				t := b.loops[i]
				if s.Label == nil || t.label == s.Label.Name {
					b.edge(cur, t.brk, nil)
					return nil
				}
			}
			return nil
		case "continue":
			for i := len(b.loops) - 1; i >= 0; i-- {
				t := b.loops[i]
				if t.isSwitchOr {
					continue // continue skips switch/select targets
				}
				if s.Label == nil || t.label == s.Label.Name {
					b.edge(cur, t.cont, nil)
					return nil
				}
			}
			return nil
		}
		return cur

	case *ast.DeferStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.cfg.Defers = append(b.cfg.Defers, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				// Unwinding path: not an ordinary exit; analyzers do not
				// check invariants along it.
				return nil
			}
		}
		return cur

	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchStmt builds a tagless or tagged switch. For a tagless switch the
// case expressions become guard-annotated test blocks evaluated in source
// order, so analyses see "case err == nil" with the accumulated knowledge
// that every earlier case was false.
func (b *builder) switchStmt(s *ast.SwitchStmt, cur *Block, label string) *Block {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	tagless := s.Tag == nil
	if !tagless {
		cur.Nodes = append(cur.Nodes, s.Tag)
	}
	after := b.newBlock()
	b.loops = append(b.loops, loopTarget{label: label, brk: after, isSwitchOr: true})
	defer func() { b.loops = b.loops[:len(b.loops)-1] }()

	// Build bodies first so fallthrough can chain them.
	type caseInfo struct {
		clause *ast.CaseClause
		body   *Block
	}
	var cases []caseInfo
	var defaultIdx = -1
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CaseClause)
		ci := caseInfo{clause: cc, body: b.newBlock()}
		if cc.List == nil {
			defaultIdx = len(cases)
		}
		cases = append(cases, ci)
	}

	// Dispatch chain.
	test := cur
	for i, ci := range cases {
		if ci.clause.List == nil {
			continue // default dispatched at the end of the chain
		}
		var g []Guard
		if tagless && len(ci.clause.List) == 1 {
			g = []Guard{{ci.clause.List[0], true}}
		}
		if tagless {
			for _, e := range ci.clause.List {
				test.Nodes = append(test.Nodes, e)
			}
		}
		b.edge(test, ci.body, g)
		next := b.newBlock()
		var ng []Guard
		if tagless && len(ci.clause.List) == 1 {
			ng = []Guard{{ci.clause.List[0], false}}
		}
		b.edge(test, next, ng)
		test = next
		_ = i
	}
	if defaultIdx >= 0 {
		b.edge(test, cases[defaultIdx].body, nil)
	} else {
		b.edge(test, after, nil)
	}

	for i, ci := range cases {
		end := b.stmtList(ci.clause.Body, ci.body)
		if end != nil {
			// fallthrough must be the final statement of a clause body.
			if n := len(ci.clause.Body); n > 0 {
				if br, ok := ci.clause.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i+1 < len(cases) {
					b.edge(end, cases[i+1].body, nil)
					continue
				}
			}
			b.edge(end, after, nil)
		}
	}
	return after
}

// clauses builds type-switch and select bodies: dispatch with no
// interpretable guards, each clause flowing to a common join.
func (b *builder) clauses(list []ast.Stmt, cur *Block, label string, _ []Guard) *Block {
	after := b.newBlock()
	b.loops = append(b.loops, loopTarget{label: label, brk: after, isSwitchOr: true})
	defer func() { b.loops = b.loops[:len(b.loops)-1] }()
	hasDefault := false
	for _, raw := range list {
		var body []ast.Stmt
		var comm ast.Stmt
		switch c := raw.(type) {
		case *ast.CaseClause:
			body = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = c.Body
			comm = c.Comm
			if c.Comm == nil {
				hasDefault = true
			}
		}
		blk := b.newBlock()
		if comm != nil {
			blk.Nodes = append(blk.Nodes, comm)
		}
		b.edge(cur, blk, nil)
		if end := b.stmtList(body, blk); end != nil {
			b.edge(end, after, nil)
		}
	}
	if !hasDefault {
		// A type switch without default can match nothing; a select without
		// default blocks, but for dataflow joining through after is sound.
		b.edge(cur, after, nil)
	}
	return after
}
