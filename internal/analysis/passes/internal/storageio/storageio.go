// Package storageio classifies calls that perform storage-device I/O.
// It is shared by the lockio and walorder analyzers.
package storageio

import (
	"go/ast"
	"go/types"
	"strings"
)

// deviceMethods are the I/O methods of storage.Device (and the batched
// reader/writer extensions).
var deviceMethods = map[string]bool{
	"ReadPages":     true,
	"WritePages":    true,
	"Sync":          true,
	"ReadPagesVec":  true,
	"WritePagesVec": true,
}

// pkgFuncs are the package-level vectored helpers in internal/storage.
var pkgFuncs = map[string]bool{
	"ReadVec":  true,
	"WriteVec": true,
}

// queueMethods are the submission/completion-queue entry points on
// storage.SubQueue. From a latching perspective they are device I/O:
// Submit and SubmitFunc block when the queue is at depth (the device's
// queue-depth backpressure) and Wait blocks until the device completes
// the submission. They classify as "SubQueue.<name>" so the analyzers
// can distinguish queue submission from a direct device call.
var queueMethods = map[string]bool{
	"Submit":     true,
	"SubmitFunc": true,
	"Wait":       true,
}

// Classify reports whether call is a storage I/O operation, returning the
// operation name (e.g. "WritePages", "Sync", "ReadVec"). Matching is by
// shape — a method of the storage package's device types/interfaces, or a
// storage package-level vectored helper — so it works identically on the
// real engine (blobdb/internal/storage) and on test fixtures (a stub
// package named storage).
func Classify(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if selection := info.Selections[sel]; selection != nil {
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		if deviceMethods[name] && base(fn.Pkg().Path()) == "storage" {
			return name, true
		}
		if queueMethods[name] && base(fn.Pkg().Path()) == "storage" && recvTypeName(fn) == "SubQueue" {
			return "SubQueue." + name, true
		}
		return "", false
	}
	// Possibly a qualified package-function call: storage.ReadVec(...).
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	if pkgFuncs[name] && base(fn.Pkg().Path()) == "storage" {
		return name, true
	}
	return "", false
}

// IsQueueOp reports whether op is a submission-queue operation
// ("SubQueue.*") rather than a direct device call.
func IsQueueOp(op string) bool { return strings.HasPrefix(op, "SubQueue.") }

// walMethods are the record-mutation entry points on wal.Writer. They
// matter to the latching analyzers because an append can trigger a
// segment flush, and a flush can trigger a checkpoint — which snapshots
// engine state under the engine's own mutexes.
var walMethods = map[string]bool{
	"AppendLSN":  true,
	"Append":     true,
	"Flush":      true,
	"Checkpoint": true,
}

// ClassifyWAL reports whether call is a WAL-writer mutation (append,
// flush, or checkpoint on a Writer from a package named "wal"),
// returning the method name. Shape-matched like Classify, so fixture
// stubs work identically to the real internal/wal.
func ClassifyWAL(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !walMethods[sel.Sel.Name] {
		return "", false
	}
	selection := info.Selections[sel]
	if selection == nil {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if base(fn.Pkg().Path()) != "wal" || recvTypeName(fn) != "Writer" {
		return "", false
	}
	return sel.Sel.Name, true
}

// IsRefDeltaConst reports whether e references the RecRefDelta record
// type constant from a package named "wal" — the refcount ledger's WAL
// record, whose append sites the walorder analyzer restricts.
func IsRefDeltaConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Name() != "RecRefDelta" || c.Pkg() == nil {
		return false
	}
	return base(c.Pkg().Path()) == "wal"
}

// recvTypeName returns the name of a method's receiver type (pointer
// receivers dereferenced), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// IsWrite reports whether op mutates or flushes the device.
func IsWrite(op string) bool {
	return op == "WritePages" || op == "WritePagesVec" || op == "WriteVec" || op == "Sync"
}

// Base returns the final element of an import path.
func Base(path string) string { return base(path) }

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
