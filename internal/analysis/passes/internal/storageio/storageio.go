// Package storageio classifies calls that perform storage-device I/O.
// It is shared by the lockio and walorder analyzers.
package storageio

import (
	"go/ast"
	"go/types"
	"strings"
)

// deviceMethods are the I/O methods of storage.Device (and the batched
// reader/writer extensions).
var deviceMethods = map[string]bool{
	"ReadPages":     true,
	"WritePages":    true,
	"Sync":          true,
	"ReadPagesVec":  true,
	"WritePagesVec": true,
}

// pkgFuncs are the package-level vectored helpers in internal/storage.
var pkgFuncs = map[string]bool{
	"ReadVec":  true,
	"WriteVec": true,
}

// queueMethods are the submission/completion-queue entry points on
// storage.SubQueue. From a latching perspective they are device I/O:
// Submit and SubmitFunc block when the queue is at depth (the device's
// queue-depth backpressure) and Wait blocks until the device completes
// the submission. They classify as "SubQueue.<name>" so the analyzers
// can distinguish queue submission from a direct device call.
var queueMethods = map[string]bool{
	"Submit":     true,
	"SubmitFunc": true,
	"Wait":       true,
}

// Classify reports whether call is a storage I/O operation, returning the
// operation name (e.g. "WritePages", "Sync", "ReadVec"). Matching is by
// shape — a method of the storage package's device types/interfaces, or a
// storage package-level vectored helper — so it works identically on the
// real engine (blobdb/internal/storage) and on test fixtures (a stub
// package named storage).
func Classify(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if selection := info.Selections[sel]; selection != nil {
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		if deviceMethods[name] && base(fn.Pkg().Path()) == "storage" {
			return name, true
		}
		if queueMethods[name] && base(fn.Pkg().Path()) == "storage" && recvTypeName(fn) == "SubQueue" {
			return "SubQueue." + name, true
		}
		return "", false
	}
	// Possibly a qualified package-function call: storage.ReadVec(...).
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	if pkgFuncs[name] && base(fn.Pkg().Path()) == "storage" {
		return name, true
	}
	return "", false
}

// IsQueueOp reports whether op is a submission-queue operation
// ("SubQueue.*") rather than a direct device call.
func IsQueueOp(op string) bool { return strings.HasPrefix(op, "SubQueue.") }

// recvTypeName returns the name of a method's receiver type (pointer
// receivers dereferenced), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// IsWrite reports whether op mutates or flushes the device.
func IsWrite(op string) bool {
	return op == "WritePages" || op == "WritePagesVec" || op == "WriteVec" || op == "Sync"
}

// Base returns the final element of an import path.
func Base(path string) string { return base(path) }

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
