// Package locks matches sync mutex operations and canonicalizes the
// locked expression to a lock *class* — a package-qualified name that is
// stable across packages and type-check sessions, so the interprocedural
// passes (summary, lockorder) can correlate acquisitions made in
// different functions, files, and packages.
//
// Classes name the declaration site, not the instance:
//
//   - a mutex field of a named struct is "pkgpath.Type.field"
//     (d.mu, db.dedup.mu and (&x.dedup).mu all map to "….dedup.mu");
//   - a named type that embeds a mutex is "pkgpath.Type"
//     (s.RLock() on a pool shard maps to "….shard");
//   - a package-level mutex variable is "pkgpath.varname";
//   - local mutexes map to "" — they are invisible to other functions,
//     so no global order over them can be stated or violated.
//
// Class-level analysis deliberately merges all instances of a class:
// the engine orders its locks by role (ledger mutex before WAL writer
// lock, never the reverse), not by instance address, and the deadlock
// analyzer checks exactly that role graph.
package locks

import (
	"go/ast"
	"go/types"
)

// An Op is one matched mutex operation.
type Op struct {
	// Name is Lock, RLock, Unlock, or RUnlock.
	Name string
	// Class is the canonical lock class, or "" for untrackable locks.
	Class string
	// Expr is the locked expression (the receiver of the sync method).
	Expr ast.Expr
}

// IsAcquire reports whether the operation takes the lock.
func (o Op) IsAcquire() bool { return o.Name == "Lock" || o.Name == "RLock" }

// Match reports whether call is a (R)Lock/(R)Unlock on a value whose
// method comes from package sync — including mutexes embedded in engine
// structs, which is how pool shards carry their latch.
func Match(info *types.Info, call *ast.CallExpr) (Op, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return Op{}, false
	}
	selection := info.Selections[sel]
	if selection == nil {
		return Op{}, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return Op{}, false
	}
	return Op{Name: sel.Sel.Name, Class: Class(info, sel.X), Expr: sel.X}, true
}

// Class canonicalizes a locked expression per the package rules above.
func Class(info *types.Info, e ast.Expr) string {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			if v.IsField() {
				if tn := namedOf(info.TypeOf(e.X)); tn != nil && tn.Pkg() != nil {
					return tn.Pkg().Path() + "." + tn.Name() + "." + v.Name()
				}
				return ""
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name() // qualified package var
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name() // package-level var
		}
	}
	// Embedded mutex (s.RLock() on a shard) or an indexed element
	// (p.shards[i].RLock()): the named type is the class.
	if tn := namedOf(info.TypeOf(e)); tn != nil && tn.Pkg() != nil && tn.Pkg().Path() != "sync" {
		return tn.Pkg().Path() + "." + tn.Name()
	}
	return ""
}

// namedOf returns the TypeName behind t (pointers dereferenced), or nil.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
