// Package app is internal engine code: calls to deprecated shims are
// flagged through the facts exported by their defining package.
package app

import "db"

func store(t *db.Txn, key, data []byte) error {
	return t.PutBlob("r", key, data) // want `call to deprecated db.Txn.PutBlob: use CreateBlob and stream through the returned Writer.`
}

func seed() *db.Txn {
	return db.Seed() // want `call to deprecated db.Seed: construct the database with New and functional options.`
}

func storeStreaming(t *db.Txn, key, data []byte) error {
	w, err := t.CreateBlob("r", key)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// A local type whose method shares the shim's name is not a shim: the
// old grep flagged this line, the fact-based analyzer does not.
type cache struct{}

func (c *cache) PutBlob(rel string, key, data []byte) error { return nil }

func storeCached(c *cache, key, data []byte) error {
	return c.PutBlob("r", key, data)
}
