// Package db is a fixture mirror of the engine's transaction API as it
// looked before the pending-mode shims were deleted: one deprecated
// shim, one streaming replacement, and an internal wrapper showing the
// defining package may call its own shims. The engine itself no longer
// has any "Deprecated:" functions — this fixture pins that a
// reintroduced shim would be flagged at every internal call site.
package db

type Txn struct{}

type Writer struct{}

func (w *Writer) Write(p []byte) (int, error) { return len(p), nil }
func (w *Writer) Close() error                { return nil }

// PutBlob stores data under key in one shot.
//
// Deprecated: use CreateBlob and stream through the returned Writer.
func (t *Txn) PutBlob(rel string, key, data []byte) error {
	w, err := t.CreateBlob(rel, key)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// CreateBlob opens a streaming writer for a new blob.
func (t *Txn) CreateBlob(rel string, key []byte) (*Writer, error) {
	return &Writer{}, nil
}

// Seed is a deprecated package-level function.
//
// Deprecated: construct the database with New and functional options.
func Seed() *Txn { return &Txn{} }

// putAll may call the shim: deprecation is policed at package
// boundaries, not inside the package that owns the migration.
func putAll(t *Txn, keys [][]byte) error {
	for _, k := range keys {
		if err := t.PutBlob("r", k, nil); err != nil {
			return err
		}
	}
	return nil
}
