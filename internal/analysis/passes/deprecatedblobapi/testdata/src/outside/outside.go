// Package outside is not under internal/: examples and external tooling
// may keep using the compact deprecated API (the migration table in the
// README is their documentation), matching the scope of the grep script
// this analyzer replaces.
package outside

import "db"

func quickstart(t *db.Txn) error {
	return t.PutBlob("image", []byte("cat.png"), []byte("bytes"))
}
