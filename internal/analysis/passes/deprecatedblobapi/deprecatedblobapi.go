// Package deprecatedblobapi replaces scripts/deprecation-lint.sh with a
// real analyzer: instead of grepping for `.PutBlob(` / `.GrowBlob(` text,
// it exports an object fact for every function or method whose doc
// comment carries a standard "Deprecated:" paragraph and flags calls to
// those objects from other internal packages. The original shims it
// policed (Txn.PutBlob, Txn.GrowBlob, Manager.Allocate, Manager.Grow,
// core.Open, core.Recover) have since been deleted outright; the
// analyzer stays so that any future shim is policed from the moment its
// doc comment says "Deprecated:", and so a resurrected one cannot creep
// back behind a new name.
//
// Facts make the check modular and honest where the grep was textual:
// a client type's own method that happens to be named PutBlob is not
// flagged (the grep's false positive), and a new deprecated shim is
// covered the moment its doc comment says so, with no script to update.
//
// Scope matches the script it replaces: only packages under internal/
// are policed, and only non-test files — the shims' own package and the
// tests that pin shim behavior may keep calling them, and examples/
// deliberately show the compact one-shot API.
//
// The standard library is out of scope entirely. Under go vet, fact
// computation visits GOROOT source, where conditional "Deprecated:"
// paragraphs (importer.ForCompiler's nil-lookup clause is the canonical
// case) would mint facts the standalone driver — which imports stdlib
// from export data, never source — can never produce. Policing blob-API
// shims must not depend on which driver ran, so GOROOT packages export
// no facts and are never policed.
package deprecatedblobapi

import (
	"go/ast"
	"go/build"
	"go/types"
	"path/filepath"
	"strings"

	"blobdb/internal/analysis"
)

// IsDeprecated marks a function object whose doc comment contains a
// "Deprecated:" paragraph. Msg is the first line of that paragraph.
type IsDeprecated struct {
	Msg string
}

func (*IsDeprecated) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "deprecatedblobapi",
	Doc: `flag internal calls to deprecated blob-API shims via object facts

The pending-mode shims (PutBlob, GrowBlob, Allocate, Grow) and the
structs-based constructors (Open, Recover) are deleted; engine code uses
the streaming Writer and functional-options New/RecoverDevice. Detection
is by the "Deprecated:" doc convention, not by name, so the check pins
the removal: reintroducing a shim under any name trips it again.`,
	Run:       run,
	FactTypes: []analysis.Fact{(*IsDeprecated)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	if inGOROOT(pass) {
		return nil, nil
	}
	// Export facts for this package's deprecated functions and methods.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			msg, ok := deprecationMessage(fn.Doc.Text())
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				pass.ExportObjectFact(obj, &IsDeprecated{Msg: msg})
			}
		}
	}

	// Police call sites in internal, non-test code only.
	if !isInternal(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
				return true // the defining package may wrap its own shims
			}
			var dep IsDeprecated
			if pass.ImportObjectFact(fn, &dep) {
				name := fn.Name()
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					name = recvName(recv.Type()) + "." + name
				}
				msg := dep.Msg
				if msg == "" {
					msg = "see its doc comment for the replacement"
				}
				pass.Reportf(call.Pos(), "call to deprecated %s.%s: %s", fn.Pkg().Name(), name, msg)
			}
			return true
		})
	}
	return nil, nil
}

// deprecationMessage extracts the first line of a standard "Deprecated:"
// doc paragraph.
func deprecationMessage(doc string) (string, bool) {
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// inGOROOT reports whether the package under analysis is standard
// library source — the go vet driver runs fact computation over GOROOT
// units, which this analyzer skips (see the package comment).
func inGOROOT(pass *analysis.Pass) bool {
	if len(pass.Files) == 0 {
		return false
	}
	root := filepath.Join(build.Default.GOROOT, "src") + string(filepath.Separator)
	return strings.HasPrefix(pass.Fset.Position(pass.Files[0].Pos()).Filename, root)
}

func isInternal(path string) bool {
	return path == "internal" ||
		strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") ||
		strings.HasSuffix(path, "/internal")
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
