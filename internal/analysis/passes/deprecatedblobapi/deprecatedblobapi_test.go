package deprecatedblobapi_test

import (
	"testing"

	"blobdb/internal/analysis/analysistest"
	"blobdb/internal/analysis/passes/deprecatedblobapi"
)

func TestDeprecatedBlobAPI(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deprecatedblobapi.Analyzer,
		"internal/app", "outside", "db")
}
