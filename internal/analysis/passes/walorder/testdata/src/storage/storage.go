// Package storage is a fixture stub of the engine's device layer: the
// analyzers recognize I/O calls by package name, method name, and shape.
package storage

type PID uint64

type Seg struct {
	PID PID
	N   int
	Buf []byte
}

type Device interface {
	ReadPages(pid PID, n int, buf []byte) error
	WritePages(pid PID, n int, buf []byte) error
	ReadPagesVec(segs []Seg) error
	WritePagesVec(segs []Seg) error
	Sync() error
}

func ReadVec(d Device, segs []Seg) error  { return d.ReadPagesVec(segs) }
func WriteVec(d Device, segs []Seg) error { return d.WritePagesVec(segs) }

// Vec is one submission: scattered reads and writes, optionally followed
// by a sync.
type Vec struct {
	Reads  []Seg
	Writes []Seg
	Sync   bool
}

// Ticket tracks one in-flight submission.
type Ticket struct{ err error }

// SubQueue is a fixture stub of the engine's submission/completion
// queue: Submit and SubmitFunc block at depth, Wait blocks until the
// completion goroutine finishes the submission.
type SubQueue struct{ dev Device }

func (q *SubQueue) Submit(v Vec) *Ticket               { return &Ticket{} }
func (q *SubQueue) SubmitFunc(fn func() error) *Ticket { return &Ticket{} }
func (q *SubQueue) Wait(t *Ticket) error               { return t.err }
