// Package core exercises walorder in the committer package: syncs are
// legal only inside commit/checkpoint protocol functions, and direct
// page writes need an explicit, reasoned allow (the dual-slot checkpoint
// write in internal/core/recover.go is the real-tree example).
package core

import (
	"devutil"
	"storage"
	"wal"
)

type db struct {
	dev storage.Device
	w   *wal.Writer
}

// ---- violations ----

func (d *db) readBlobAndSync() error {
	return d.dev.Sync() // want `Device.Sync outside internal/wal and the core committer`
}

func (d *db) repairPages(buf []byte) error {
	return d.dev.WritePages(3, 1, buf) // want `extent write-back \(WritePages\) outside internal/buffer and internal/storage`
}

// stageRefcountHere appends a ledger record from outside ledger.go:
// even core's own committer files may not mint RecRefDelta batches.
func (d *db) stageRefcountHere(txn uint64, payload []byte) error {
	_, err := d.w.AppendLSN(txn, wal.RecRefDelta, payload) // want `RecRefDelta appended outside the dedup ledger`
	return err
}

// ---- conforming code ----

// stageTreeWrite appends a non-ledger record: unrestricted in core.
func (d *db) stageTreeWrite(txn uint64, payload []byte) error {
	_, err := d.w.AppendLSN(txn, wal.RecBlobState, payload)
	return err
}

// dispatchRecord reads the record type; only appends are ownership-
// restricted, so recovery-style dispatch on RecRefDelta is fine in core.
func dispatchRecord(t wal.RecType) bool {
	return t == wal.RecRefDelta
}

// finishCommitBatch is committer code: the shared group-commit sync.
func (d *db) finishCommitBatch() error {
	return d.dev.Sync()
}

// writeCheckpointSlot mirrors the dual-slot checkpoint write: a direct
// page write justified in-tree with a reasoned allow.
func (d *db) writeCheckpointSlot(slot storage.PID, buf []byte) error {
	//blobvet:allow dual-slot checkpoint image: written outside the pool by design, fenced by its own epoch header
	return d.dev.WritePages(slot, 1, buf)
}

func (d *db) readPages(buf []byte) error {
	return d.dev.ReadPages(1, 1, buf) // reads are not ordering-sensitive
}

// ---- submission-queue cases ----

// flushExtentsAsync hands the sync to the queue's completion goroutine:
// legal — the submission is sequenced behind everything the submitter
// already enqueued, the pipelined committer's off-critical-path fsync.
func (d *db) flushExtentsAsync(q *storage.SubQueue) error {
	t := q.SubmitFunc(func() error {
		return d.dev.Sync()
	})
	return q.Wait(t)
}

// strayClosureSync: wrapping the sync in a closure that is not a queue
// submission grants no exemption.
func (d *db) strayClosureSync() error {
	fn := func() error {
		return d.dev.Sync() // want `Device.Sync outside internal/wal and the core committer`
	}
	return fn()
}

// ---- transitive sync (summary closure) ----

// drainMetadata reaches Device.Sync two hops away, through a package the
// analyzer never scans: only the effect summaries can attribute it here.
func (d *db) drainMetadata() error {
	return devutil.FlushMeta(d.dev) // want `call to FlushMeta reaches Device\.Sync \(devutil\.FlushMeta → devutil\.finish → Device\.Sync\) outside internal/wal and the core committer`
}

// commitViaHelper: the committer owns its sync however it delegates it.
func (d *db) commitViaHelper() error {
	return devutil.FlushMeta(d.dev)
}
