// ledger.go is the one core file allowed to append RecRefDelta: it
// mirrors the real dedup ledger's two append sites (tryDedup increments
// under the sealing transaction, logDecs apply-time decrements).
package core

import "wal"

type ledger struct {
	w *wal.Writer
}

func (l *ledger) logShares(txn uint64, payload []byte) error {
	_, err := l.w.AppendLSN(txn, wal.RecRefDelta, payload)
	return err
}

func (l *ledger) logDecs(txn uint64, payload []byte) error {
	if _, err := l.w.AppendLSN(txn, wal.RecRefDelta, payload); err != nil {
		return err
	}
	return l.w.Flush()
}
