// Package wal is the durability owner: out of walorder's scope, so its
// group-commit sync and record writes are never flagged.
package wal

import "storage"

type writer struct {
	dev storage.Device
}

func (w *writer) groupSync() error {
	return w.dev.Sync()
}

func (w *writer) appendRecord(pid storage.PID, buf []byte) error {
	return w.dev.WritePages(pid, 1, buf)
}
