// Package wal is the durability owner: out of walorder's scope, so its
// group-commit sync and record writes are never flagged.
package wal

import "storage"

type writer struct {
	dev storage.Device
}

func (w *writer) groupSync() error {
	return w.dev.Sync()
}

func (w *writer) appendRecord(pid storage.PID, buf []byte) error {
	return w.dev.WritePages(pid, 1, buf)
}

// RecType and Writer mirror the real WAL's record-append surface, so
// fixtures can exercise the RecRefDelta ownership rule by shape.
type RecType uint8

const (
	RecBlobState RecType = iota + 1
	RecRefDelta
)

type Writer struct{ dev storage.Device }

func (l *Writer) AppendLSN(txnID uint64, t RecType, payload []byte) (uint64, error) {
	return 0, nil
}

func (l *Writer) Flush() error { return nil }
