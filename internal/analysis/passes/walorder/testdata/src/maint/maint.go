// Package maint exercises walorder in the defragmenter: relocation
// copies must route through core's Txn API (which flushes via the
// buffer pool and submission queue), never by touching the device or
// the ledger's WAL records directly.
package maint

import (
	"storage"
	"wal"
)

type defrag struct {
	dev storage.Device
	w   *wal.Writer
}

// ---- violations ----

// forceCopyDurable syncs the device to "make sure" a relocated copy is
// durable: a defragmenter-issued sync can promote a half-copied extent
// ahead of its remap record.
func (d *defrag) forceCopyDurable() error {
	return d.dev.Sync() // want `Device.Sync outside internal/wal and the core committer`
}

// writeCopyDirect bypasses the pool for the relocation copy.
func (d *defrag) writeCopyDirect(dst storage.PID, buf []byte) error {
	return d.dev.WritePages(dst, 1, buf) // want `extent write-back \(WritePages\) outside internal/buffer and internal/storage`
}

// logOwnRefDelta minting a ledger record from maint forks the recovery
// contract even without an append — referencing the constant is flagged.
func (d *defrag) logOwnRefDelta(txn uint64, payload []byte) error {
	_, err := d.w.AppendLSN(txn, wal.RecRefDelta, payload) // want `refcount ledger WAL record \(RecRefDelta\) referenced outside internal/core`
	return err
}

// ---- conforming code ----

// scoreRegion reads are not ordering-sensitive.
func (d *defrag) scoreRegion(pid storage.PID, buf []byte) error {
	return d.dev.ReadPages(pid, 1, buf)
}
