// Package blob exercises walorder outside the committer: no sync, no
// write-back, from the blob layer.
package blob

import "storage"

type manager struct {
	dev storage.Device
}

func (m *manager) flushTail(segs []storage.Seg) error {
	return storage.WriteVec(m.dev, segs) // want `extent write-back \(WriteVec\) outside internal/buffer and internal/storage`
}

func (m *manager) syncAfterRead() error {
	return m.dev.Sync() // want `Device.Sync outside internal/wal and the core committer`
}

// Commit-sounding names buy nothing outside internal/core.
func (m *manager) commitTail() error {
	return m.dev.Sync() // want `Device.Sync outside internal/wal and the core committer`
}

func (m *manager) readExtent(buf []byte) error {
	return m.dev.ReadPages(9, 1, buf)
}
