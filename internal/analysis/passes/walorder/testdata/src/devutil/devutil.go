// Package devutil is a fixture helper package outside the walorder scan
// scope: a sync buried here is invisible to the per-package body check
// and must be attributed — through the summary closure — to the engine
// call site that reaches it.
package devutil

import "storage"

// FlushMeta fsyncs the device after metadata writes.
func FlushMeta(d storage.Device) error {
	return finish(d)
}

func finish(d storage.Device) error {
	return d.Sync()
}
