// Package walorder is the static shadow of the WAL-before-flush rule:
// durability ordering is owned by exactly two layers, so the analyzer
// pins device-level writes and syncs to them.
//
//   - Device.Sync establishes the durable prefix. Only internal/wal (the
//     group-commit/checkpoint sync path) and the committer in
//     internal/core may call it: a sync issued anywhere else can promote
//     extent pages to durable before their commit record, silently
//     breaking the single-flush protocol's crash story.
//   - Extent write-back (WritePages / WritePagesVec / storage.WriteVec)
//     belongs to internal/buffer and internal/storage. An engine layer
//     writing pages directly bypasses the pool's dirty tracking and the
//     WAL's LSN-framed segment fencing, so recovery can no longer reason
//     about what reached the device.
//
// Two further rules guard the refcount ledger and the defragmenter:
//
//   - RecRefDelta — the ledger's WAL record — is appended only by the
//     dedup ledger in internal/core (increments under the sealing
//     transaction in tryDedup, apply-time decrements in logDecs, both in
//     ledger.go). Recovery replays these batches under an owner-tagged,
//     seq-fenced contract; a RecRefDelta minted anywhere else forks that
//     contract, so any reference outside core (and any append outside
//     core's ledger.go) is flagged.
//   - internal/maint (the online defragmenter) is in scope: relocation
//     copies must route through the buffer pool / submission queue via
//     core's Txn API, never by writing pages or syncing the device
//     directly — a defragmenter-issued sync could promote a half-copied
//     extent to durable ahead of its remap record.
//
// Reads are not ordering-sensitive and are never flagged. A Sync inside
// a closure submitted to storage.SubQueue is allowed: it executes on the
// queue's completion goroutine, sequenced behind the submitter's prior
// work — the pipelined committer's off-critical-path fsync. Simulator
// and tooling packages (oskern, dbsim, bench, remap) are out of scope —
// they model devices rather than mutate the engine's.
//
// Syncs are also tracked *through* calls: a non-committer function that
// reaches Device.Sync transitively — through any chain of helpers whose
// links are neither committer-named nor inside the owning layers
// (wal/buffer/storage) — is flagged at the call site, using the summary
// pass's effect facts. Only chains ending in an unscanned package are
// reported this way; a stray sync inside a scanned engine layer is
// already flagged at its own body, and reporting it again at every
// caller would bury the signal.
package walorder

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/passes/internal/storageio"
	"blobdb/internal/analysis/passes/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc: `restrict Device.Sync to the WAL/committer and page writes to the buffer manager

The single-flush commit protocol is an ordering argument: WAL record,
sync, then extent write-back. Any other layer syncing or writing pages
invalidates the argument statically. Callee chains are resolved through
function effect summaries, so a sync buried in an unscanned helper
package is attributed to the engine call site that reaches it.`,
	Run:      run,
	Requires: []*analysis.Analyzer{summary.Analyzer},
}

// scopePkgs are the engine layers above the device where stray writes or
// syncs would break the ordering argument. The owning layers (wal,
// buffer, storage) are not scanned for their own privileges; core is
// scanned but its committer/checkpoint functions may sync.
var scopePkgs = map[string]bool{
	"core":       true,
	"blob":       true,
	"blobserver": true,
	"crashsim":   true,
	"fusefs":     true,
	"wiki":       true,
	"extent":     true,
	"maint":      true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pkgBase := storageio.Base(pass.Pkg.Path())
	if !scopePkgs[pkgBase] {
		return nil, nil
	}
	r := newSyncReach(pass.AllObjectFacts(summary.Analyzer.Name))
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkLedgerRecords(pass, pkgBase, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, pkgBase, fn, r)
		}
	}
	return nil, nil
}

// ownerPkgs are the layers whose device privileges are their own: a
// chain entering them is sanctioned (wal.Sync IS the durability point).
var ownerPkgs = map[string]bool{"wal": true, "buffer": true, "storage": true}

// syncReach answers "does this function transitively issue Device.Sync
// through an unsanctioned chain?" from the summary fact stream.
type syncReach struct {
	sums    map[string]*summary.FuncSummary
	memo    map[string][]string // func key -> chain of hop names ending at Sync, nil = clean
	onStack map[string]bool
}

func factKey(pkg, path string) string { return pkg + "\x00" + path }

func newSyncReach(all []analysis.ObjectFact) *syncReach {
	r := &syncReach{sums: map[string]*summary.FuncSummary{}, memo: map[string][]string{}, onStack: map[string]bool{}}
	for _, of := range all {
		if s, ok := of.Fact.(*summary.FuncSummary); ok {
			r.sums[factKey(of.PkgPath, of.ObjPath)] = s
		}
	}
	return r
}

// chain returns the hop names from (pkg, path) to an unsanctioned direct
// Sync, or nil. Traversal stops at owner packages and committer-named
// functions (sanctioned protocol entries), and reports a direct Sync
// only when it sits in an unscanned package — scanned layers are flagged
// at the sync's own body instead.
func (r *syncReach) chain(pkg, path string) []string {
	base := storageio.Base(pkg)
	if ownerPkgs[base] || committerFunc(funcName(path)) {
		return nil
	}
	k := factKey(pkg, path)
	if c, ok := r.memo[k]; ok {
		return c
	}
	if r.onStack[k] {
		return nil
	}
	r.onStack[k] = true
	defer delete(r.onStack, k)

	var out []string
	s, ok := r.sums[k]
	if ok {
		if !scopePkgs[base] && directSync(s) {
			out = []string{base + "." + path, "Device.Sync"}
		} else {
			for _, c := range s.Calls {
				if c.Field {
					continue
				}
				if sub := r.chain(c.PkgPath, c.ObjPath); sub != nil {
					out = append([]string{base + "." + path}, sub...)
					break
				}
			}
		}
	}
	r.memo[k] = out
	return out
}

func directSync(s *summary.FuncSummary) bool {
	for _, fx := range s.IO {
		if fx.Op == "Sync" {
			return true
		}
	}
	return false
}

// funcName returns the bare function name of an object path ("Type.Method"
// or "Func").
func funcName(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkLedgerRecords enforces RecRefDelta ownership. Outside core, any
// reference to the constant is flagged — there is no legitimate reason
// for another engine layer to mint or parse ledger records. Inside core,
// appends must come from ledger.go, where the dedup ledger's increment
// (tryDedup) and decrement (logDecs) paths live; reads (recovery's
// record-type dispatch) are unrestricted.
func checkLedgerRecords(pass *analysis.Pass, pkgBase string, file *ast.File) {
	if pkgBase != "core" {
		ast.Inspect(file, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || !storageio.IsRefDeltaConst(pass.TypesInfo, e) {
				return true
			}
			pass.Reportf(e.Pos(), "refcount ledger WAL record (RecRefDelta) referenced outside internal/core: ledger mutation is owned by the core committer/reclaimer; recovery's owner-tagged replay admits no other append site")
			return false
		})
		return
	}
	if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "ledger.go" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := storageio.ClassifyWAL(pass.TypesInfo, call)
		if !ok || (op != "AppendLSN" && op != "Append") {
			return true
		}
		for _, arg := range call.Args {
			if storageio.IsRefDeltaConst(pass.TypesInfo, arg) {
				pass.Reportf(call.Pos(), "RecRefDelta appended outside the dedup ledger (internal/core/ledger.go): refcount batches are seq-fenced and owner-tagged there; a stray append desynchronizes replay from the tuple recount")
				return false
			}
		}
		return true
	})
}

// committerFunc reports whether a core function is part of the commit /
// checkpoint protocol, which owns its syncs (the dual-slot checkpoint
// write is separately justified with an allow comment).
func committerFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "commit") || strings.Contains(l, "checkpoint")
}

func checkFunc(pass *analysis.Pass, pkgBase string, fn *ast.FuncDecl, r *syncReach) {
	queueBodies := queueClosureBodies(pass, fn)
	inQueueClosure := func(pos token.Pos) bool {
		for _, b := range queueBodies {
			if b.Pos() <= pos && pos < b.End() {
				return true
			}
		}
		return false
	}
	committerCaller := pkgBase == "core" && committerFunc(fn.Name.Name)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := storageio.Classify(pass.TypesInfo, call)
		if !ok {
			// Not a device op itself — but the callee may reach one. A
			// committer owns its syncs however it delegates them, and a
			// queue closure runs on the completion goroutine.
			if committerCaller || inQueueClosure(call.Pos()) {
				return true
			}
			if pkg, path, ok := summary.Resolve(pass.TypesInfo, call); ok {
				if chain := r.chain(pkg, path); chain != nil {
					pass.Reportf(call.Pos(), "call to %s reaches Device.Sync (%s) outside internal/wal and the core committer: durability ordering is owned by the WAL (single-flush protocol); route the sync through wal.Sync or the commit pipeline", funcName(path), strings.Join(chain, " → "))
				}
			}
			return true
		}
		switch op {
		case "Sync":
			if pkgBase == "core" && committerFunc(fn.Name.Name) {
				return true
			}
			if inQueueClosure(call.Pos()) {
				// Completion-queue goroutine: a Sync inside a closure
				// handed to SubQueue.SubmitFunc/Submit executes on the
				// queue's completion goroutine, sequenced behind
				// everything the submitter already enqueued — the
				// pipelined committer's legal way to fsync off the
				// critical path without breaking single-flush ordering.
				return true
			}
			pass.Reportf(call.Pos(), "Device.Sync outside internal/wal and the core committer: durability ordering is owned by the WAL (single-flush protocol); call wal.Sync or commit through the pipeline")
		case "WritePages", "WritePagesVec", "WriteVec":
			pass.Reportf(call.Pos(), "extent write-back (%s) outside internal/buffer and internal/storage: pages reach the device only through the buffer manager, after the WAL sync that covers them", op)
		}
		return true
	})
}

// queueClosureBodies collects the bodies of function literals passed to a
// submission-queue entry point within fn — code that will run on the
// completion-queue goroutine, not the declaring one.
func queueClosureBodies(pass *analysis.Pass, fn *ast.FuncDecl) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := storageio.Classify(pass.TypesInfo, call); !ok || !storageio.IsQueueOp(op) {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok && lit.Body != nil {
				bodies = append(bodies, lit.Body)
			}
		}
		return true
	})
	return bodies
}
