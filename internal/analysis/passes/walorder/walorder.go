// Package walorder is the static shadow of the WAL-before-flush rule:
// durability ordering is owned by exactly two layers, so the analyzer
// pins device-level writes and syncs to them.
//
//   - Device.Sync establishes the durable prefix. Only internal/wal (the
//     group-commit/checkpoint sync path) and the committer in
//     internal/core may call it: a sync issued anywhere else can promote
//     extent pages to durable before their commit record, silently
//     breaking the single-flush protocol's crash story.
//   - Extent write-back (WritePages / WritePagesVec / storage.WriteVec)
//     belongs to internal/buffer and internal/storage. An engine layer
//     writing pages directly bypasses the pool's dirty tracking and the
//     WAL's LSN-framed segment fencing, so recovery can no longer reason
//     about what reached the device.
//
// Two further rules guard the refcount ledger and the defragmenter:
//
//   - RecRefDelta — the ledger's WAL record — is appended only by the
//     dedup ledger in internal/core (increments under the sealing
//     transaction in tryDedup, apply-time decrements in logDecs, both in
//     ledger.go). Recovery replays these batches under an owner-tagged,
//     seq-fenced contract; a RecRefDelta minted anywhere else forks that
//     contract, so any reference outside core (and any append outside
//     core's ledger.go) is flagged.
//   - internal/maint (the online defragmenter) is in scope: relocation
//     copies must route through the buffer pool / submission queue via
//     core's Txn API, never by writing pages or syncing the device
//     directly — a defragmenter-issued sync could promote a half-copied
//     extent to durable ahead of its remap record.
//
// Reads are not ordering-sensitive and are never flagged. A Sync inside
// a closure submitted to storage.SubQueue is allowed: it executes on the
// queue's completion goroutine, sequenced behind the submitter's prior
// work — the pipelined committer's off-critical-path fsync. Simulator
// and tooling packages (oskern, dbsim, bench, remap) are out of scope —
// they model devices rather than mutate the engine's.
package walorder

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/passes/internal/storageio"
)

var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc: `restrict Device.Sync to the WAL/committer and page writes to the buffer manager

The single-flush commit protocol is an ordering argument: WAL record,
sync, then extent write-back. Any other layer syncing or writing pages
invalidates the argument statically.`,
	Run: run,
}

// scopePkgs are the engine layers above the device where stray writes or
// syncs would break the ordering argument. The owning layers (wal,
// buffer, storage) are not scanned for their own privileges; core is
// scanned but its committer/checkpoint functions may sync.
var scopePkgs = map[string]bool{
	"core":       true,
	"blob":       true,
	"blobserver": true,
	"crashsim":   true,
	"fusefs":     true,
	"wiki":       true,
	"extent":     true,
	"maint":      true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pkgBase := storageio.Base(pass.Pkg.Path())
	if !scopePkgs[pkgBase] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkLedgerRecords(pass, pkgBase, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, pkgBase, fn)
		}
	}
	return nil, nil
}

// checkLedgerRecords enforces RecRefDelta ownership. Outside core, any
// reference to the constant is flagged — there is no legitimate reason
// for another engine layer to mint or parse ledger records. Inside core,
// appends must come from ledger.go, where the dedup ledger's increment
// (tryDedup) and decrement (logDecs) paths live; reads (recovery's
// record-type dispatch) are unrestricted.
func checkLedgerRecords(pass *analysis.Pass, pkgBase string, file *ast.File) {
	if pkgBase != "core" {
		ast.Inspect(file, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || !storageio.IsRefDeltaConst(pass.TypesInfo, e) {
				return true
			}
			pass.Reportf(e.Pos(), "refcount ledger WAL record (RecRefDelta) referenced outside internal/core: ledger mutation is owned by the core committer/reclaimer; recovery's owner-tagged replay admits no other append site")
			return false
		})
		return
	}
	if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "ledger.go" {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := storageio.ClassifyWAL(pass.TypesInfo, call)
		if !ok || (op != "AppendLSN" && op != "Append") {
			return true
		}
		for _, arg := range call.Args {
			if storageio.IsRefDeltaConst(pass.TypesInfo, arg) {
				pass.Reportf(call.Pos(), "RecRefDelta appended outside the dedup ledger (internal/core/ledger.go): refcount batches are seq-fenced and owner-tagged there; a stray append desynchronizes replay from the tuple recount")
				return false
			}
		}
		return true
	})
}

// committerFunc reports whether a core function is part of the commit /
// checkpoint protocol, which owns its syncs (the dual-slot checkpoint
// write is separately justified with an allow comment).
func committerFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "commit") || strings.Contains(l, "checkpoint")
}

func checkFunc(pass *analysis.Pass, pkgBase string, fn *ast.FuncDecl) {
	queueBodies := queueClosureBodies(pass, fn)
	inQueueClosure := func(pos token.Pos) bool {
		for _, b := range queueBodies {
			if b.Pos() <= pos && pos < b.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := storageio.Classify(pass.TypesInfo, call)
		if !ok {
			return true
		}
		switch op {
		case "Sync":
			if pkgBase == "core" && committerFunc(fn.Name.Name) {
				return true
			}
			if inQueueClosure(call.Pos()) {
				// Completion-queue goroutine: a Sync inside a closure
				// handed to SubQueue.SubmitFunc/Submit executes on the
				// queue's completion goroutine, sequenced behind
				// everything the submitter already enqueued — the
				// pipelined committer's legal way to fsync off the
				// critical path without breaking single-flush ordering.
				return true
			}
			pass.Reportf(call.Pos(), "Device.Sync outside internal/wal and the core committer: durability ordering is owned by the WAL (single-flush protocol); call wal.Sync or commit through the pipeline")
		case "WritePages", "WritePagesVec", "WriteVec":
			pass.Reportf(call.Pos(), "extent write-back (%s) outside internal/buffer and internal/storage: pages reach the device only through the buffer manager, after the WAL sync that covers them", op)
		}
		return true
	})
}

// queueClosureBodies collects the bodies of function literals passed to a
// submission-queue entry point within fn — code that will run on the
// completion-queue goroutine, not the declaring one.
func queueClosureBodies(pass *analysis.Pass, fn *ast.FuncDecl) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := storageio.Classify(pass.TypesInfo, call); !ok || !storageio.IsQueueOp(op) {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok && lit.Body != nil {
				bodies = append(bodies, lit.Body)
			}
		}
		return true
	})
	return bodies
}
