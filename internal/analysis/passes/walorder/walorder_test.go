package walorder_test

import (
	"testing"

	"blobdb/internal/analysis/analysistest"
	"blobdb/internal/analysis/passes/walorder"
)

func TestWALOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walorder.Analyzer, "core", "blob", "wal", "maint")
}
