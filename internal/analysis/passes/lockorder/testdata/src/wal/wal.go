// Package wal is a fixture stub of the engine's WAL: a Manager that
// owns the device lock and an OnCheckpoint callback, and a Writer whose
// append can flush, whose flush can checkpoint — the reentry chain the
// lockorder analyzer must walk without any wal-specific knowledge.
package wal

import "sync"

type Manager struct {
	mu           sync.Mutex
	OnCheckpoint func()
	pending      []byte
}

func NewManager() *Manager { return &Manager{} }

func (m *Manager) NewWriter() *Writer { return &Writer{m: m} }

type Writer struct {
	m   *Manager
	buf []byte
}

func (l *Writer) AppendLSN(rec []byte) (uint64, error) {
	l.buf = append(l.buf, rec...)
	if len(l.buf) > 64 {
		if err := l.Flush(); err != nil {
			return 0, err
		}
	}
	return uint64(len(l.buf)), nil
}

func (l *Writer) Flush() error {
	buf := l.buf
	l.buf = l.buf[:0]
	return l.m.writeOut(buf)
}

func (w *Manager) writeOut(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pending = append(w.pending, buf...)
	if len(w.pending) > 256 {
		return w.checkpointLocked()
	}
	return nil
}

func (w *Manager) checkpointLocked() error {
	if w.OnCheckpoint != nil {
		w.OnCheckpoint()
	}
	w.pending = w.pending[:0]
	return nil
}
