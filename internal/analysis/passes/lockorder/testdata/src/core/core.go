// Package core pins the ledger↔WAL ABBA from the dedup work as a
// lockorder fixture: the ledger mutex is held across a WAL append, the
// append can flush, the flush can checkpoint, and the checkpoint calls
// back — through the OnCheckpoint function field — into a snapshot that
// needs the same ledger mutex. The analyzer must find the cycle from
// effect summaries alone (no wal- or dedup-specific rule) and report the
// full witness chain.
//
// It also pins the two shapes that must stay silent:
//
//   - dedupFixed releases the mutex before the append (the actual fix);
//   - logDecs holds decMu across the append — safe because the
//     checkpoint callback never takes decMu, so the class has no
//     incoming edge and can appear in no cycle. The exemption needs no
//     annotation; it falls out of the graph.
package core

import (
	"sync"

	"wal"
)

type dedup struct {
	mu    sync.Mutex
	decMu sync.Mutex
	refs  map[uint64]int
	w     *wal.Writer
	decw  *wal.Writer
}

type DB struct {
	wal *wal.Manager
	led dedup
}

func Open() *DB {
	m := wal.NewManager()
	db := &DB{wal: m}
	db.led.refs = map[uint64]int{}
	db.led.w = m.NewWriter()
	db.led.decw = m.NewWriter()
	db.wal.OnCheckpoint = db.writeCheckpoint // the dynamic edge back into the engine
	return db
}

// tryDedup holds the ledger mutex across the append: dedup.mu → Manager.mu,
// while the checkpoint path gives Manager.mu → dedup.mu. ABBA.
func (db *DB) tryDedup(h uint64, rec []byte) error {
	db.led.mu.Lock()
	defer db.led.mu.Unlock()
	db.led.refs[h]++
	_, err := db.led.w.AppendLSN(rec) // want `lock-order cycle \(potential ABBA deadlock\): core\.dedup\.mu → wal\.Manager\.mu → core\.dedup\.mu; core\.dedup\.mu→wal\.Manager\.mu via core\.DB\.tryDedup \(core\.go:\d+\) → wal\.Writer\.AppendLSN \(wal\.go:\d+\) → wal\.Writer\.Flush \(wal\.go:\d+\) → wal\.Manager\.writeOut \(wal\.go:\d+\); wal\.Manager\.mu→core\.dedup\.mu via wal\.Manager\.writeOut \(wal\.go:\d+\) → wal\.Manager\.checkpointLocked \(wal\.go:\d+\) → core\.DB\.writeCheckpoint \(core\.go:\d+\) → core\.DB\.snapshotLedger \(core\.go:\d+\)`
	return err
}

// dedupFixed is the corrected shape: drop the mutex, then append.
func (db *DB) dedupFixed(h uint64, rec []byte) error {
	db.led.mu.Lock()
	db.led.refs[h]++
	db.led.mu.Unlock()
	_, err := db.led.w.AppendLSN(rec)
	return err
}

// logDecs appends under decMu. One-directional: nothing on the
// checkpoint path acquires decMu, so no cycle and no report.
func (db *DB) logDecs(rec []byte) error {
	db.led.decMu.Lock()
	defer db.led.decMu.Unlock()
	_, err := db.led.decw.AppendLSN(rec)
	return err
}

func (db *DB) writeCheckpoint() {
	db.snapshotLedger()
}

func (db *DB) snapshotLedger() {
	db.led.mu.Lock()
	defer db.led.mu.Unlock()
	for h := range db.led.refs {
		_ = h
	}
}
