package lockorder_test

import (
	"testing"

	"blobdb/internal/analysis/analysistest"
	"blobdb/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "wal", "core")
}
