// Package lockorder detects potential ABBA deadlocks by building the
// whole-program lock-acquisition graph from the summary pass's facts
// and reporting every cycle with a concrete witness path.
//
// Nodes are lock *classes* (see internal/locks: "core.dedup.mu" is one
// node however many dedup instances exist). An edge A → B means the
// program can acquire B while holding A, discovered two ways:
//
//   - intra-function: a summary Acquire of B whose must-held set
//     contains A (the lock-table pattern: l.mu then lt.mu);
//   - interprocedural: a call made with A held whose callee —
//     transitively, through any chain of summarized functions,
//     including calls through bound function fields such as the WAL's
//     OnCheckpoint hook — acquires B.
//
// A cycle in this graph is an acquisition order the program does not
// agree on: two goroutines walking different arcs of the cycle can each
// hold what the other needs. This is exactly how PR 9's near-deadlock
// arose — the dedup ledger held its mutex across a WAL append, the
// append could flush, the flush could checkpoint, and the checkpoint
// called back through OnCheckpoint into the ledger mutex. That rule was
// hand-coded then (lockio's retired "core mode"); now it falls out of
// the graph: dedup.mu → wal.Manager.mu from the append-under-mutex,
// wal.Manager.mu → dedup.mu from the checkpoint callback, cycle.
//
// Exemption policy: locks that only ever appear on one side carry no
// cycle and are never reported — the decrement writer's decMu (held
// across appends, never taken by the checkpoint) needs no annotation,
// it simply has no incoming edge. Class-level merging means the
// analyzer cannot order instances of the same class (two Relation
// mutexes locked in address order); self-edges are therefore skipped
// rather than reported.
//
// Each cycle is reported once: a package reports only cycles that are
// not constructible from its dependencies' facts alone, so the package
// that contributes the closing edge owns the diagnostic and importers
// stay silent. Witness paths name every hop (function, call site,
// acquisition site), so the report reads as a replay, not a verdict.
package lockorder

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/passes/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `detect lock-order cycles (potential ABBA deadlocks) across the whole program

Builds the global lock-acquisition graph from function effect summaries
(locks held at call sites, transitive acquisitions through the call
graph including bound function fields) and reports each cycle with a
witness path: the function chain from the holding site to the reentrant
acquisition.`,
	Run:      run,
	Requires: []*analysis.Analyzer{summary.Analyzer},
}

// funcKey addresses one summarized function.
type funcKey struct {
	pkg  string
	path string
}

func (k funcKey) display() string { return base(k.pkg) + "." + k.path }

// A hop is one step of a witness path: a function and the position
// inside it where it calls the next hop (or, for the last hop, where it
// acquires the edge's target lock).
type hop struct {
	pkg string
	fn  string
	pos string
}

// An edge is "target acquired while source held", with one witness.
type edge struct {
	from, to string
	witness  []hop
}

func run(pass *analysis.Pass) (interface{}, error) {
	all := pass.AllObjectFacts(summary.Analyzer.Name)
	if len(all) == 0 {
		return nil, nil
	}

	full := newGraph(all, "")
	deps := newGraph(all, pass.Pkg.Path())

	cycles := full.cycles()
	var reported []string
	for _, cyc := range cycles {
		if deps.hasCycle(cyc) {
			continue // constructible without this package: a dependency (or an earlier unit) owns it
		}
		reported = append(reported, full.describe(cyc))
	}
	if len(reported) == 0 {
		return nil, nil
	}

	for i, msg := range reported {
		pass.Report(analysis.Diagnostic{Pos: anchor(pass, full, cycles[i]), Message: msg})
	}
	return nil, nil
}

// graph is the lock-order graph built from one view of the fact stream.
type graph struct {
	sums  map[funcKey]*summary.FuncSummary
	binds map[funcKey][]funcKey // function-field → bound functions
	edges map[[2]string]*edge
	nodes []string

	memo    map[funcKey]map[string][]hop
	onStack map[funcKey]bool
}

// newGraph builds the graph from facts, excluding (when excludePkg is
// non-empty) every fact exported by that package — the "what could my
// dependencies already see" view used for cycle ownership.
func newGraph(all []analysis.ObjectFact, excludePkg string) *graph {
	g := &graph{
		sums:    map[funcKey]*summary.FuncSummary{},
		binds:   map[funcKey][]funcKey{},
		edges:   map[[2]string]*edge{},
		memo:    map[funcKey]map[string][]hop{},
		onStack: map[funcKey]bool{},
	}
	for _, of := range all {
		if excludePkg != "" && of.PkgPath == excludePkg {
			continue
		}
		s, ok := of.Fact.(*summary.FuncSummary)
		if !ok {
			continue
		}
		k := funcKey{pkg: of.PkgPath, path: of.ObjPath}
		g.sums[k] = s
		for _, b := range s.Binds {
			fk := funcKey{pkg: b.FieldPkg, path: b.FieldPath}
			g.binds[fk] = append(g.binds[fk], funcKey{pkg: b.PkgPath, path: b.ObjPath})
		}
	}
	// Deterministic bind resolution order.
	for _, targets := range g.binds {
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].pkg != targets[j].pkg {
				return targets[i].pkg < targets[j].pkg
			}
			return targets[i].path < targets[j].path
		})
	}

	// Sorted function order makes edge witnesses deterministic.
	keys := make([]funcKey, 0, len(g.sums))
	for k := range g.sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].path < keys[j].path
	})

	for _, k := range keys {
		s := g.sums[k]
		for _, a := range s.Acquires {
			for _, held := range a.Held {
				g.addEdge(held, a.Class, []hop{{pkg: k.pkg, fn: k.display(), pos: a.Pos}})
			}
		}
		for _, c := range s.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, callee := range g.resolve(c) {
				for class, trace := range g.acquiresTrans(callee) {
					w := append([]hop{{pkg: k.pkg, fn: k.display(), pos: c.Pos}}, trace...)
					for _, held := range c.Held {
						g.addEdge(held, class, w)
					}
				}
			}
		}
	}

	seen := map[string]bool{}
	for key := range g.edges {
		for _, n := range []string{key[0], key[1]} {
			if !seen[n] {
				seen[n] = true
				g.nodes = append(g.nodes, n)
			}
		}
	}
	sort.Strings(g.nodes)
	return g
}

func (g *graph) addEdge(from, to string, witness []hop) {
	if from == to {
		return // class-level analysis cannot order instances of one class
	}
	key := [2]string{from, to}
	if _, ok := g.edges[key]; ok {
		return // first witness wins; sorted build order makes it stable
	}
	g.edges[key] = &edge{from: from, to: to, witness: witness}
}

// resolve maps a summarized call to concrete callees: the static target,
// or — through a function-typed field — everything ever bound to it.
func (g *graph) resolve(c summary.Call) []funcKey {
	k := funcKey{pkg: c.PkgPath, path: c.ObjPath}
	if !c.Field {
		return []funcKey{k}
	}
	return g.binds[k]
}

// acquiresTrans returns every lock class fn can acquire — itself or
// through any chain of summarized calls — with one witness trace per
// class. Recursion through cycles in the call graph is cut by an
// on-stack guard (the second visit contributes nothing new).
func (g *graph) acquiresTrans(fn funcKey) map[string][]hop {
	if m, ok := g.memo[fn]; ok {
		return m
	}
	if g.onStack[fn] {
		return nil
	}
	g.onStack[fn] = true
	defer delete(g.onStack, fn)

	out := map[string][]hop{}
	s, ok := g.sums[fn]
	if !ok {
		g.memo[fn] = out
		return out
	}
	for _, a := range s.Acquires {
		if _, seen := out[a.Class]; !seen {
			out[a.Class] = []hop{{pkg: fn.pkg, fn: fn.display(), pos: a.Pos}}
		}
	}
	for _, c := range s.Calls {
		for _, callee := range g.resolve(c) {
			for class, trace := range g.acquiresTrans(callee) {
				if _, seen := out[class]; !seen {
					out[class] = append([]hop{{pkg: fn.pkg, fn: fn.display(), pos: c.Pos}}, trace...)
				}
			}
		}
	}
	g.memo[fn] = out
	return out
}

// cycles returns one representative cycle per strongly connected
// component with more than one node, as an ordered node list (the edge
// list is implied: consecutive nodes, wrapping). Reporting one cycle
// per SCC keeps a tangle from producing a diagnostic per permutation;
// fixing the reported arc re-runs the analysis on the remainder.
func (g *graph) cycles() [][]string {
	sccs := g.tarjan()
	var out [][]string
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		// Walk from the smallest node within the SCC until it closes.
		cyc := []string{scc[0]}
		seen := map[string]int{scc[0]: 0}
		cur := scc[0]
		for {
			next := ""
			for _, m := range g.succs(cur) {
				if in[m] {
					next = m
					break
				}
			}
			if next == "" {
				break // cannot happen in an SCC; stay safe
			}
			if at, ok := seen[next]; ok {
				out = append(out, cyc[at:])
				break
			}
			seen[next] = len(cyc)
			cyc = append(cyc, next)
			cur = next
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], " ") < strings.Join(out[j], " ")
	})
	return out
}

func (g *graph) succs(n string) []string {
	var out []string
	for key := range g.edges {
		if key[0] == n {
			out = append(out, key[1])
		}
	}
	sort.Strings(out)
	return out
}

// hasCycle reports whether every edge of cyc exists in this graph.
func (g *graph) hasCycle(cyc []string) bool {
	for i, n := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if _, ok := g.edges[[2]string{n, next}]; !ok {
			return false
		}
	}
	return true
}

// tarjan computes strongly connected components over the class nodes.
func (g *graph) tarjan() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.succs(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range g.nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// describe renders one cycle with per-edge witness paths.
func (g *graph) describe(cyc []string) string {
	var b strings.Builder
	b.WriteString("lock-order cycle (potential ABBA deadlock): ")
	for _, n := range cyc {
		b.WriteString(shortClass(n))
		b.WriteString(" → ")
	}
	b.WriteString(shortClass(cyc[0]))
	for i, n := range cyc {
		next := cyc[(i+1)%len(cyc)]
		e := g.edges[[2]string{n, next}]
		if e == nil {
			continue
		}
		fmt.Fprintf(&b, "; %s→%s via ", shortClass(n), shortClass(next))
		for j, h := range e.witness {
			if j > 0 {
				b.WriteString(" → ")
			}
			fmt.Fprintf(&b, "%s (%s)", h.fn, shortPos(h.pos))
		}
	}
	return b.String()
}

// anchor picks the diagnostic position: the first witness hop that lives
// in the current package (cycles are only reported by a contributing
// package, so one exists in practice; the package's first file is the
// fallback).
func anchor(pass *analysis.Pass, g *graph, cyc []string) token.Pos {
	for i, n := range cyc {
		next := cyc[(i+1)%len(cyc)]
		e := g.edges[[2]string{n, next}]
		if e == nil {
			continue
		}
		for _, h := range e.witness {
			if h.pkg != pass.Pkg.Path() {
				continue
			}
			if p := resolvePos(pass, h.pos); p != token.NoPos {
				return p
			}
		}
	}
	return pass.Files[0].Pos()
}

// resolvePos converts a rendered "file:line:col" back to a token.Pos in
// the current FileSet — possible exactly because the hop's file belongs
// to the package being analyzed.
func resolvePos(pass *analysis.Pass, posStr string) token.Pos {
	name, line, col, ok := splitPos(posStr)
	if !ok {
		return token.NoPos
	}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || tf.Name() != name {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return token.NoPos
		}
		return tf.LineStart(line) + token.Pos(col-1)
	}
	return token.NoPos
}

func splitPos(s string) (name string, line, col int, ok bool) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return "", 0, 0, false
	}
	j := strings.LastIndexByte(s[:i], ':')
	if j < 0 {
		return "", 0, 0, false
	}
	line, err1 := strconv.Atoi(s[j+1 : i])
	col, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil {
		return "", 0, 0, false
	}
	return s[:j], line, col, true
}

// shortClass trims a class's package path to its base: the class names
// in a diagnostic must scan as roles (core.dedup.mu), not module paths.
func shortClass(class string) string {
	i := strings.LastIndexByte(class, '/')
	if i < 0 {
		return class
	}
	return class[i+1:]
}

// shortPos reduces a full position to "file.go:line".
func shortPos(pos string) string {
	name, line, _, ok := splitPos(pos)
	if !ok {
		return pos
	}
	return filepath.Base(name) + ":" + strconv.Itoa(line)
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
