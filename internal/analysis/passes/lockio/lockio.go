// Package lockio checks the buffer pool's lock-drop I/O rule: no
// storage-device I/O — directly or through a one-hop same-package callee
// — while a sync.Mutex or sync.RWMutex is held.
//
// The PR 3 eviction redesign made this the pool's central latching
// invariant: a victim is claimed under the structural mutex, the mutex is
// dropped, the dirty extent is written back, and the claim is reconfirmed
// after relocking. Holding a pool latch across device I/O serializes
// every reader behind the disk; this analyzer turns the rule from a
// comment into a diagnostic.
//
// The analysis runs only over buffer-pool packages (package name
// "buffer"). It tracks locks acquired in the function being analyzed
// (must-held on all paths, so lock-drop windows don't false-positive) and
// flags, at each point where a lock is held, calls that do device I/O
// themselves or whose same-package callee does (one hop, matching the
// pool's writeBack/loadMisses helper structure). Functions that follow
// the *Locked naming convention are callees, not lock owners: the lock
// they run under was acquired by their caller, which is where the I/O
// would be reported.
package lockio

import (
	"go/ast"
	"go/types"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/cfg"
	"blobdb/internal/analysis/passes/internal/storageio"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: `check that buffer-pool latches are never held across device I/O

Claims must be made under the latch and I/O done outside it (claim,
unlock, write back, relock, reconfirm). Device I/O under a pool mutex
serializes all readers behind the disk.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if storageio.Base(pass.Pkg.Path()) != "buffer" {
		return nil, nil
	}

	// Summaries: same-package functions that perform device I/O directly.
	directIO := map[types.Object]string{}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := storageio.Classify(pass.TypesInfo, call); ok {
						if _, seen := directIO[obj]; !seen {
							directIO[obj] = op
						}
					}
				}
				return true
			})
		}
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, directIO)
		}
	}
	return nil, nil
}

// lockset is the set of locks (identified by receiver expression text,
// e.g. "p.mu") held on every path reaching a point.
type lockset map[string]bool

func (s lockset) clone() lockset {
	c := make(lockset, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// intersect merges a successor's incoming state for a must-analysis;
// reports whether old changed. old == nil means unvisited.
func intersect(old, add lockset) (lockset, bool) {
	if old == nil {
		return add, true
	}
	changed := false
	for k := range old {
		if !add[k] {
			delete(old, k)
			changed = true
		}
	}
	return old, changed
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, directIO map[types.Object]string) {
	// Cheap pre-scan: no lock operations means nothing to track.
	hasLock := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _, ok := lockOp(pass, call); ok && (op == "Lock" || op == "RLock") {
				hasLock = true
			}
		}
		return !hasLock
	})
	if !hasLock {
		return
	}
	g := cfg.New(fn.Body)
	if g == nil {
		return
	}

	in := map[*cfg.Block]lockset{g.Entry: {}}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := in[b].clone()
		for _, n := range b.Nodes {
			applyNode(pass, st, n, nil, nil)
		}
		for _, e := range b.Succs {
			if merged, changed := intersect(in[e.To], st.clone()); changed {
				in[e.To] = merged
				work = append(work, e.To)
			}
		}
	}

	// Report on the converged states (held sets only shrink during the
	// fixpoint, so reporting during iteration could flag lock-drop
	// windows that a later pass proves unlocked).
	for _, b := range g.Blocks {
		st := in[b]
		if st == nil {
			continue
		}
		st = st.clone()
		for _, n := range b.Nodes {
			applyNode(pass, st, n, pass, directIO)
		}
	}
}

// applyNode threads one CFG node through the lockset. When report is
// non-nil, I/O-under-lock calls are diagnosed.
func applyNode(pass *analysis.Pass, st lockset, n ast.Node, report *analysis.Pass, directIO map[types.Object]string) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // runs later, under its own discipline
		case *ast.DeferStmt:
			return false // runs at return; deferred unlocks keep the lock held here
		case *ast.CallExpr:
			if op, lockExpr, ok := lockOp(pass, m); ok {
				switch op {
				case "Lock", "RLock":
					st[lockExpr] = true
				case "Unlock", "RUnlock":
					delete(st, lockExpr)
				}
				return true
			}
			if report == nil || len(st) == 0 {
				return true
			}
			if op, ok := storageio.Classify(pass.TypesInfo, m); ok {
				report.Reportf(m.Pos(), "device I/O (%s) while %s is held; release the pool latch before touching storage", op, heldNames(st))
				return true
			}
			if callee := calleeObj(pass, m); callee != nil {
				if op, ok := directIO[callee]; ok {
					report.Reportf(m.Pos(), "call to %s performs device I/O (%s) while %s is held; release the pool latch before touching storage", callee.Name(), op, heldNames(st))
				}
			}
		}
		return true
	})
}

func heldNames(st lockset) string {
	// Deterministic, and in practice a single lock.
	best := ""
	for k := range st {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockOp matches mutex operations: (Lock|RLock|Unlock|RUnlock) on a value
// whose method comes from package sync (including locks embedded in pool
// shards). The second result names the lock by its receiver expression.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return "", "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return name, types.ExprString(sel.X), true
}

// calleeObj resolves a call to its same-package function object.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg {
		return fn
	}
	return nil
}
