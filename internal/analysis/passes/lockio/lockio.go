// Package lockio checks the buffer pool's lock-drop I/O rule: no
// storage-device I/O — directly or through any chain of callees —
// while a sync.Mutex or sync.RWMutex is held.
//
// The PR 3 eviction redesign made this the pool's central latching
// invariant: a victim is claimed under the structural mutex, the mutex is
// dropped, the dirty extent is written back, and the claim is reconfirmed
// after relocking. Holding a pool latch across device I/O serializes
// every reader behind the disk; this analyzer turns the rule from a
// comment into a diagnostic.
//
// The analysis runs over buffer-pool packages (package name "buffer").
// It tracks locks acquired in the function being analyzed (must-held on
// all paths, so lock-drop windows don't false-positive) and flags, at
// each point where a lock is held, calls that do device I/O themselves
// or whose callee — at any depth, across package boundaries — reaches
// device I/O. Reachability comes from the summary pass's effect facts
// (Pass.AllObjectFacts), not from a same-package syntactic scan: the one
// hop the old implementation looked through is now the general closure
// over the call graph. Functions that follow the *Locked naming
// convention are callees, not lock owners: the lock they run under was
// acquired by their caller, which is where the I/O is reported.
//
// The closure respects the protocol it enforces. A callee that releases
// the caller-held latch class before reaching the device (the summary's
// Unlocks field — an unlock with no local must-acquisition) is the
// claim/unlock/write-back/relock pattern itself, executed one frame
// down: the eviction helper drops p.mu, writes the victim back, and
// relocks. Such a chain is not I/O under the latch and is not flagged;
// only chains that reach the device with every caller latch still held
// are.
//
// The ledger "core mode" this pass used to carry — dedup.mu held across
// WAL appends — is gone: that rule was one instance of lock-order
// reentry, and the lockorder analyzer now derives it (and every other
// instance) from the global lock-acquisition graph instead of a
// hand-coded mutex-and-method list.
package lockio

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/cfg"
	"blobdb/internal/analysis/passes/internal/locks"
	"blobdb/internal/analysis/passes/internal/storageio"
	"blobdb/internal/analysis/passes/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: `check that buffer-pool latches are never held across device I/O

Claims must be made under the latch and I/O done outside it (claim,
unlock, write back, relock, reconfirm). Device I/O under a pool mutex
serializes all readers behind the disk. Callees are resolved through
function effect summaries, so I/O buried arbitrarily deep in helpers —
including helpers in other packages — is still attributed to the locked
call site.`,
	Run:      run,
	Requires: []*analysis.Analyzer{summary.Analyzer},
}

func run(pass *analysis.Pass) (interface{}, error) {
	if storageio.Base(pass.Pkg.Path()) != "buffer" {
		return nil, nil
	}
	r := newReach(pass.AllObjectFacts(summary.Analyzer.Name))
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, r)
		}
	}
	return nil, nil
}

// reach answers "does this function transitively perform device I/O,
// and through which first operation?" from the summary fact stream.
type reach struct {
	sums    map[string]*summary.FuncSummary
	memo    map[string]string // func key -> first I/O op ("" = none)
	onStack map[string]bool
}

func key(pkg, path string) string { return pkg + "\x00" + path }

func newReach(all []analysis.ObjectFact) *reach {
	r := &reach{sums: map[string]*summary.FuncSummary{}, memo: map[string]string{}, onStack: map[string]bool{}}
	for _, of := range all {
		if s, ok := of.Fact.(*summary.FuncSummary); ok {
			r.sums[key(of.PkgPath, of.ObjPath)] = s
		}
	}
	return r
}

// io returns the first device I/O operation k transitively performs
// while the caller's latches (held, a sorted list of lock classes) stay
// held, or "". Submission-queue ops count: Submit blocks on the device's
// queue depth, which is exactly the stall the latch must not ride. A
// function whose Unlocks cover every held class is the lock-drop
// protocol running one frame down — its I/O happens outside the
// caller's critical section, so the chain is clean.
func (r *reach) io(k string, held []string) string {
	mk := k + "\x01" + strings.Join(held, ",")
	if op, ok := r.memo[mk]; ok {
		return op
	}
	if r.onStack[mk] {
		return ""
	}
	r.onStack[mk] = true
	defer delete(r.onStack, mk)

	op := ""
	if s, ok := r.sums[k]; ok && !dropsAll(s.Unlocks, held) {
		if len(s.IO) > 0 {
			op = s.IO[0].Op
		} else if len(s.Queue) > 0 {
			op = s.Queue[0].Op
		} else {
			for _, c := range s.Calls {
				if c.Field {
					continue // function-field targets are lockorder's concern
				}
				if sub := r.io(key(c.PkgPath, c.ObjPath), held); sub != "" {
					op = sub
					break
				}
			}
		}
	}
	r.memo[mk] = op
	return op
}

// dropsAll reports whether every held lock class appears in unlocks. A
// held lock with no class (a caller-local mutex) can never be released
// by a callee, so its presence keeps the chain flagged.
func dropsAll(unlocks, held []string) bool {
	for _, h := range held {
		found := false
		for _, u := range unlocks {
			if u == h {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// lockset maps the locks held on every path reaching a point — keyed by
// receiver expression text (e.g. "p.mu", for display) — to their
// canonical lock class (locks.Class; "" for caller-local mutexes).
type lockset map[string]string

func (s lockset) clone() lockset {
	c := make(lockset, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// classes returns the sorted held lock classes, including "" entries for
// locks no callee could possibly release.
func (s lockset) classes() []string {
	out := make([]string, 0, len(s))
	for _, v := range s {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// intersect merges a successor's incoming state for a must-analysis;
// reports whether old changed. old == nil means unvisited.
func intersect(old, add lockset) (lockset, bool) {
	if old == nil {
		return add, true
	}
	changed := false
	for k := range old {
		if _, ok := add[k]; !ok {
			delete(old, k)
			changed = true
		}
	}
	return old, changed
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, r *reach) {
	// Cheap pre-scan: no lock acquisitions means nothing to do.
	hasLock := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _, _, ok := lockOp(pass, call); ok && (op == "Lock" || op == "RLock") {
				hasLock = true
			}
		}
		return !hasLock
	})
	if !hasLock {
		return
	}
	g := cfg.New(fn.Body)
	if g == nil {
		return
	}

	in := map[*cfg.Block]lockset{g.Entry: {}}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := in[b].clone()
		for _, n := range b.Nodes {
			applyNode(pass, st, n, nil)
		}
		for _, e := range b.Succs {
			if merged, changed := intersect(in[e.To], st.clone()); changed {
				in[e.To] = merged
				work = append(work, e.To)
			}
		}
	}

	// Report on the converged states (held sets only shrink during the
	// fixpoint, so reporting during iteration could flag lock-drop
	// windows that a later pass proves unlocked).
	for _, b := range g.Blocks {
		st := in[b]
		if st == nil {
			continue
		}
		st = st.clone()
		for _, n := range b.Nodes {
			applyNode(pass, st, n, r)
		}
	}
}

// applyNode threads one CFG node through the lockset. When r is
// non-nil, I/O-under-lock calls are diagnosed.
func applyNode(pass *analysis.Pass, st lockset, n ast.Node, r *reach) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // runs later, under its own discipline
		case *ast.DeferStmt:
			return false // runs at return; deferred unlocks keep the lock held here
		case *ast.CallExpr:
			if op, lockExpr, class, ok := lockOp(pass, m); ok {
				switch op {
				case "Lock", "RLock":
					st[lockExpr] = class
				case "Unlock", "RUnlock":
					delete(st, lockExpr)
				}
				return true
			}
			if r == nil || len(st) == 0 {
				return true
			}
			if op, ok := storageio.Classify(pass.TypesInfo, m); ok {
				pass.Reportf(m.Pos(), "device I/O (%s) while %s is held; release the pool latch before touching storage", op, heldNames(st))
				return true
			}
			if pkg, path, ok := summary.Resolve(pass.TypesInfo, m); ok {
				if op := r.io(key(pkg, path), st.classes()); op != "" {
					pass.Reportf(m.Pos(), "call to %s performs device I/O (%s) while %s is held; release the pool latch before touching storage", funcName(path), op, heldNames(st))
				}
			}
		}
		return true
	})
}

func heldNames(st lockset) string {
	// Deterministic, and in practice a single lock.
	best := ""
	for k := range st {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockOp matches mutex operations: (Lock|RLock|Unlock|RUnlock) on a value
// whose method comes from package sync (including locks embedded in pool
// shards). It names the lock two ways: by receiver expression text (for
// the diagnostic) and by canonical class (to match callee Unlocks facts).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (op, expr, class string, ok bool) {
	m, ok := locks.Match(pass.TypesInfo, call)
	if !ok {
		return "", "", "", false
	}
	return m.Name, types.ExprString(m.Expr), m.Class, true
}

// funcName returns the bare function name of an object path
// ("Type.Method" or "Func").
func funcName(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}
