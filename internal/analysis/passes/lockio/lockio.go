// Package lockio checks the buffer pool's lock-drop I/O rule: no
// storage-device I/O — directly or through a one-hop same-package callee
// — while a sync.Mutex or sync.RWMutex is held.
//
// The PR 3 eviction redesign made this the pool's central latching
// invariant: a victim is claimed under the structural mutex, the mutex is
// dropped, the dirty extent is written back, and the claim is reconfirmed
// after relocking. Holding a pool latch across device I/O serializes
// every reader behind the disk; this analyzer turns the rule from a
// comment into a diagnostic.
//
// The analysis runs over buffer-pool packages (package name "buffer")
// and — in a narrower mode — over the engine core (package name "core").
// It tracks locks acquired in the function being analyzed (must-held on
// all paths, so lock-drop windows don't false-positive) and flags, at
// each point where a lock is held, calls that do device I/O themselves
// or whose same-package callee does (one hop, matching the pool's
// writeBack/loadMisses helper structure). Functions that follow the
// *Locked naming convention are callees, not lock owners: the lock they
// run under was acquired by their caller, which is where the I/O would
// be reported.
//
// Core mode guards the refcount ledger's lock-ordering invariant. Only
// the dedup ledger's structural mutex (the `mu` field of the `dedup`
// struct) is tracked there, and the flagged operations additionally
// include WAL-writer mutation (AppendLSN / Flush / Checkpoint): an
// append can flush a segment, a flush can trigger a checkpoint, and the
// checkpoint snapshots the ledger under that same mutex — the ABBA
// deadlock the ledger's unlock-then-append discipline exists to
// prevent. Serialization mutexes with other names (the decrement
// writer's decMu) are deliberately out of scope: they order appends and
// are never taken by the checkpoint.
package lockio

import (
	"go/ast"
	"go/types"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/cfg"
	"blobdb/internal/analysis/passes/internal/storageio"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: `check that buffer-pool latches are never held across device I/O

Claims must be made under the latch and I/O done outside it (claim,
unlock, write back, relock, reconfirm). Device I/O under a pool mutex
serializes all readers behind the disk. In the engine core, the dedup
ledger's mutex additionally must never be held across a WAL append: the
append can flush, the flush can checkpoint, and the checkpoint snapshots
the ledger under the same mutex (ABBA).`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ledgerMode := false
	switch storageio.Base(pass.Pkg.Path()) {
	case "buffer":
	case "core":
		ledgerMode = true
	default:
		return nil, nil
	}

	// Summaries: same-package functions that perform device I/O directly.
	directIO := map[types.Object]string{}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := classifyIO(pass, call, ledgerMode); ok {
						if _, seen := directIO[obj]; !seen {
							directIO[obj] = op
						}
					}
				}
				return true
			})
		}
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, directIO, ledgerMode)
		}
	}
	return nil, nil
}

// classifyIO reports the operations forbidden under a tracked lock: in
// both modes storage-device I/O, and in ledger mode also WAL-writer
// mutation (checkpoint reentry into the ledger mutex).
func classifyIO(pass *analysis.Pass, call *ast.CallExpr, ledgerMode bool) (string, bool) {
	if op, ok := storageio.Classify(pass.TypesInfo, call); ok {
		return op, true
	}
	if ledgerMode {
		if op, ok := storageio.ClassifyWAL(pass.TypesInfo, call); ok {
			return "wal." + op, true
		}
	}
	return "", false
}

// lockset is the set of locks (identified by receiver expression text,
// e.g. "p.mu") held on every path reaching a point.
type lockset map[string]bool

func (s lockset) clone() lockset {
	c := make(lockset, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// intersect merges a successor's incoming state for a must-analysis;
// reports whether old changed. old == nil means unvisited.
func intersect(old, add lockset) (lockset, bool) {
	if old == nil {
		return add, true
	}
	changed := false
	for k := range old {
		if !add[k] {
			delete(old, k)
			changed = true
		}
	}
	return old, changed
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, directIO map[types.Object]string, ledgerMode bool) {
	// Cheap pre-scan: no tracked lock operations means nothing to do.
	hasLock := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _, ok := trackedLockOp(pass, call, ledgerMode); ok && (op == "Lock" || op == "RLock") {
				hasLock = true
			}
		}
		return !hasLock
	})
	if !hasLock {
		return
	}
	g := cfg.New(fn.Body)
	if g == nil {
		return
	}

	in := map[*cfg.Block]lockset{g.Entry: {}}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := in[b].clone()
		for _, n := range b.Nodes {
			applyNode(pass, st, n, nil, nil, ledgerMode)
		}
		for _, e := range b.Succs {
			if merged, changed := intersect(in[e.To], st.clone()); changed {
				in[e.To] = merged
				work = append(work, e.To)
			}
		}
	}

	// Report on the converged states (held sets only shrink during the
	// fixpoint, so reporting during iteration could flag lock-drop
	// windows that a later pass proves unlocked).
	for _, b := range g.Blocks {
		st := in[b]
		if st == nil {
			continue
		}
		st = st.clone()
		for _, n := range b.Nodes {
			applyNode(pass, st, n, pass, directIO, ledgerMode)
		}
	}
}

// applyNode threads one CFG node through the lockset. When report is
// non-nil, I/O-under-lock calls are diagnosed.
func applyNode(pass *analysis.Pass, st lockset, n ast.Node, report *analysis.Pass, directIO map[types.Object]string, ledgerMode bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // runs later, under its own discipline
		case *ast.DeferStmt:
			return false // runs at return; deferred unlocks keep the lock held here
		case *ast.CallExpr:
			if op, lockExpr, ok := trackedLockOp(pass, m, ledgerMode); ok {
				switch op {
				case "Lock", "RLock":
					st[lockExpr] = true
				case "Unlock", "RUnlock":
					delete(st, lockExpr)
				}
				return true
			}
			if report == nil || len(st) == 0 {
				return true
			}
			if op, ok := classifyIO(pass, m, ledgerMode); ok {
				report.Reportf(m.Pos(), "%s while %s is held; %s", opNoun(op), heldNames(st), opFix(op))
				return true
			}
			if callee := calleeObj(pass, m); callee != nil {
				if op, ok := directIO[callee]; ok {
					report.Reportf(m.Pos(), "call to %s performs %s while %s is held; %s", callee.Name(), opNoun(op), heldNames(st), opFix(op))
				}
			}
		}
		return true
	})
}

// opNoun and opFix word the diagnostic for the two operation families.
func opNoun(op string) string {
	if strings.HasPrefix(op, "wal.") {
		return "WAL mutation (" + strings.TrimPrefix(op, "wal.") + ")"
	}
	return "device I/O (" + op + ")"
}

func opFix(op string) string {
	if strings.HasPrefix(op, "wal.") {
		return "an append can flush, and a flush can checkpoint into this mutex (ABBA); unlock before appending"
	}
	return "release the pool latch before touching storage"
}

func heldNames(st lockset) string {
	// Deterministic, and in practice a single lock.
	best := ""
	for k := range st {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockOp matches mutex operations: (Lock|RLock|Unlock|RUnlock) on a value
// whose method comes from package sync (including locks embedded in pool
// shards). The second result names the lock by its receiver expression.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (string, string, ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", nil, false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return "", "", nil, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", nil, false
	}
	return name, types.ExprString(sel.X), sel.X, true
}

// trackedLockOp filters lockOp matches down to the locks this mode cares
// about: every mutex in a buffer pool, only the dedup ledger's
// structural mutex in the engine core.
func trackedLockOp(pass *analysis.Pass, call *ast.CallExpr, ledgerMode bool) (string, string, bool) {
	op, name, lockExpr, ok := lockOp(pass, call)
	if !ok {
		return "", "", false
	}
	if ledgerMode && !isDedupMu(pass, lockExpr) {
		return "", "", false
	}
	return op, name, true
}

// isDedupMu reports whether the locked expression is the `mu` field of
// the core's dedup struct (matched by field and type name, so fixtures
// exercise the rule by shape).
func isDedupMu(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "mu" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "dedup"
}

// calleeObj resolves a call to its same-package function object.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg {
		return fn
	}
	return nil
}
