// Package other is outside the lockio scope (the lock-drop rule is the
// buffer pool's latching discipline): I/O under a lock here — e.g. the
// WAL's group-commit sync under its mutex — is a different, legitimate
// protocol and must not be flagged.
package other

import (
	"sync"

	"storage"
)

type wal struct {
	mu  sync.Mutex
	dev storage.Device
}

func (w *wal) groupSync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dev.Sync() // not buffer: out of scope
}
