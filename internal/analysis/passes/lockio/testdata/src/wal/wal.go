// Package wal is a fixture stub of the engine's log writer: the lockio
// analyzer recognizes WAL mutation by package name, receiver type, and
// method name.
package wal

type RecType uint8

const (
	RecBlobState RecType = iota + 1
	RecRefDelta
)

type Writer struct{}

func (l *Writer) AppendLSN(txnID uint64, t RecType, payload []byte) (uint64, error) {
	return 0, nil
}

func (l *Writer) Flush() error { return nil }

func (l *Writer) Checkpoint() error { return nil }
