// Package spill is a fixture helper package between the pool and the
// device: the exported entry point reaches device I/O only through an
// unexported second hop. The old one-hop, same-package callee scan could
// not see through this; the summary-closure rewrite must.
package spill

import "storage"

// Drain writes the segments out through the staging path.
func Drain(d storage.Device, segs []storage.Seg) error {
	return stage(d, segs)
}

func stage(d storage.Device, segs []storage.Seg) error {
	return storage.WriteVec(d, segs)
}
