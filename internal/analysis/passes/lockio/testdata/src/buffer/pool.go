// Package buffer exercises the lockio analyzer: device I/O under a pool
// latch (directly or through any chain of callees, same-package or not)
// versus the conforming claim/unlock/write-back/relock/reconfirm
// pattern.
package buffer

import (
	"sync"

	"spill"
	"storage"
)

type shard struct {
	sync.RWMutex
	resident map[storage.PID]int
}

type pool struct {
	mu     sync.Mutex
	shards [4]shard
	dev    storage.Device
}

func (p *pool) writeBack(pid storage.PID, buf []byte) error {
	return storage.WriteVec(p.dev, []storage.Seg{{PID: pid, N: 1, Buf: buf}})
}

func (p *pool) claimVictim() storage.PID  { return 1 }
func (p *pool) reconfirm(pid storage.PID) {}

// ---- violations ----

func (p *pool) badDirectWrite(buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dev.WritePages(1, 1, buf) // want `device I/O \(WritePages\) while p.mu is held`
}

func (p *pool) badOneHop(buf []byte) error {
	p.mu.Lock()
	err := p.writeBack(2, buf) // want `call to writeBack performs device I/O \(WriteVec\) while p.mu is held`
	p.mu.Unlock()
	return err
}

func (p *pool) badReadUnderShard(buf []byte) error {
	s := &p.shards[0]
	s.RLock()
	err := p.dev.ReadPages(3, 1, buf) // want `device I/O \(ReadPages\) while s is held`
	s.RUnlock()
	return err
}

func (p *pool) badSyncUnderLock() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dev.Sync() // want `device I/O \(Sync\) while p.mu is held`
}

// badTwoHopCrossPkg reaches the device through spill.Drain → stage →
// storage.WriteVec: two hops, the second unexported in another package.
// Only the summary closure can attribute this to the locked call site.
func (p *pool) badTwoHopCrossPkg(segs []storage.Seg) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return spill.Drain(p.dev, segs) // want `call to Drain performs device I/O \(WriteVec\) while p.mu is held`
}

// badHelperChain layers a same-package helper over the cross-package
// one: three hops end to end.
func (p *pool) badHelperChain(segs []storage.Seg) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drainAll(segs) // want `call to drainAll performs device I/O \(WriteVec\) while p.mu is held`
}

func (p *pool) drainAll(segs []storage.Seg) error {
	return spill.Drain(p.dev, segs)
}

// ---- conforming code ----

// goodLockDrop is the PR 3 eviction pattern: claim under the latch, drop
// it for the write-back, reconfirm after relocking.
func (p *pool) goodLockDrop(buf []byte) error {
	p.mu.Lock()
	victim := p.claimVictim()
	p.mu.Unlock()

	if err := p.writeBack(victim, buf); err != nil {
		return err
	}

	p.mu.Lock()
	p.reconfirm(victim)
	p.mu.Unlock()
	return nil
}

// evictOneLocked is the lock-drop protocol run one frame down — the real
// pool's eviction shape: the caller holds p.mu, the helper drops it for
// the write-back and relocks before returning. Its summary records the
// drop (Unlocks=[buffer.pool.mu]), so callers holding p.mu across it are
// not flagged: the I/O happens outside their critical section.
func (p *pool) evictOneLocked(buf []byte) error {
	victim := p.claimVictim()
	p.mu.Unlock()
	err := p.writeBack(victim, buf)
	p.mu.Lock()
	if err == nil {
		p.reconfirm(victim)
	}
	return err
}

// goodEvictViaHelper calls the lock-drop helper under the latch: the
// pinned shape of internal/buffer's admit → evictOneLocked loop.
func (p *pool) goodEvictViaHelper(buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictOneLocked(buf)
}

// badEvictKeepsLatch looks like the helper pattern but never drops the
// latch, so the write-back really does ride under p.mu.
func (p *pool) evictKeepsLatch(buf []byte) error {
	return p.writeBack(p.claimVictim(), buf)
}

func (p *pool) badEvictKeepsLatch(buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictKeepsLatch(buf) // want `call to evictKeepsLatch performs device I/O \(WriteVec\) while p.mu is held`
}

// badShardHeldThroughDrop: the helper drops p.mu but the caller also
// holds a shard latch the helper never releases — the drop does not
// cover the full held set, so the call is still flagged.
func (p *pool) badShardHeldThroughDrop(buf []byte) error {
	s := &p.shards[2]
	p.mu.Lock()
	s.RLock()
	err := p.evictOneLocked(buf) // want `call to evictOneLocked performs device I/O \(WriteVec\) while p.mu is held`
	s.RUnlock()
	p.mu.Unlock()
	return err
}

func (p *pool) goodNoLock(buf []byte) error {
	return storage.ReadVec(p.dev, []storage.Seg{{PID: 9, N: 1, Buf: buf}})
}

func (p *pool) goodBookkeepingUnderLock(pid storage.PID) int {
	s := &p.shards[int(pid)%len(p.shards)]
	s.RLock()
	defer s.RUnlock()
	return s.resident[pid]
}

// ---- submission-queue cases ----

// Submit blocks when the queue is at depth — device backpressure — so
// holding a pool latch across it serializes readers exactly like a
// direct write would.
func (p *pool) badSubmitUnderLock(q *storage.SubQueue, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := q.Submit(storage.Vec{Writes: []storage.Seg{{PID: 1, N: 1, Buf: buf}}}) // want `device I/O \(SubQueue\.Submit\) while p\.mu is held`
	_ = t
	return nil
}

func (p *pool) badWaitUnderShard(q *storage.SubQueue, t *storage.Ticket) error {
	s := &p.shards[1]
	s.RLock()
	defer s.RUnlock()
	return q.Wait(t) // want `device I/O \(SubQueue\.Wait\) while s is held`
}

// goodSubmitLockDrop claims the victim under the latch and submits the
// write-back outside it.
func (p *pool) goodSubmitLockDrop(q *storage.SubQueue, buf []byte) error {
	p.mu.Lock()
	victim := p.claimVictim()
	p.mu.Unlock()
	t := q.Submit(storage.Vec{Writes: []storage.Seg{{PID: victim, N: 1, Buf: buf}}})
	return q.Wait(t)
}
