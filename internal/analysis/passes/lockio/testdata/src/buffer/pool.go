// Package buffer exercises the lockio analyzer: device I/O under a pool
// latch (directly or through a one-hop callee) versus the conforming
// claim/unlock/write-back/relock/reconfirm pattern.
package buffer

import (
	"sync"

	"storage"
)

type shard struct {
	sync.RWMutex
	resident map[storage.PID]int
}

type pool struct {
	mu     sync.Mutex
	shards [4]shard
	dev    storage.Device
}

func (p *pool) writeBack(pid storage.PID, buf []byte) error {
	return storage.WriteVec(p.dev, []storage.Seg{{PID: pid, N: 1, Buf: buf}})
}

func (p *pool) claimVictim() storage.PID  { return 1 }
func (p *pool) reconfirm(pid storage.PID) {}

// ---- violations ----

func (p *pool) badDirectWrite(buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dev.WritePages(1, 1, buf) // want `device I/O \(WritePages\) while p.mu is held`
}

func (p *pool) badOneHop(buf []byte) error {
	p.mu.Lock()
	err := p.writeBack(2, buf) // want `call to writeBack performs device I/O \(WriteVec\) while p.mu is held`
	p.mu.Unlock()
	return err
}

func (p *pool) badReadUnderShard(buf []byte) error {
	s := &p.shards[0]
	s.RLock()
	err := p.dev.ReadPages(3, 1, buf) // want `device I/O \(ReadPages\) while s is held`
	s.RUnlock()
	return err
}

func (p *pool) badSyncUnderLock() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dev.Sync() // want `device I/O \(Sync\) while p.mu is held`
}

// ---- conforming code ----

// goodLockDrop is the PR 3 eviction pattern: claim under the latch, drop
// it for the write-back, reconfirm after relocking.
func (p *pool) goodLockDrop(buf []byte) error {
	p.mu.Lock()
	victim := p.claimVictim()
	p.mu.Unlock()

	if err := p.writeBack(victim, buf); err != nil {
		return err
	}

	p.mu.Lock()
	p.reconfirm(victim)
	p.mu.Unlock()
	return nil
}

func (p *pool) goodNoLock(buf []byte) error {
	return storage.ReadVec(p.dev, []storage.Seg{{PID: 9, N: 1, Buf: buf}})
}

func (p *pool) goodBookkeepingUnderLock(pid storage.PID) int {
	s := &p.shards[int(pid)%len(p.shards)]
	s.RLock()
	defer s.RUnlock()
	return s.resident[pid]
}

// ---- submission-queue cases ----

// Submit blocks when the queue is at depth — device backpressure — so
// holding a pool latch across it serializes readers exactly like a
// direct write would.
func (p *pool) badSubmitUnderLock(q *storage.SubQueue, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := q.Submit(storage.Vec{Writes: []storage.Seg{{PID: 1, N: 1, Buf: buf}}}) // want `device I/O \(SubQueue\.Submit\) while p\.mu is held`
	_ = t
	return nil
}

func (p *pool) badWaitUnderShard(q *storage.SubQueue, t *storage.Ticket) error {
	s := &p.shards[1]
	s.RLock()
	defer s.RUnlock()
	return q.Wait(t) // want `device I/O \(SubQueue\.Wait\) while s is held`
}

// goodSubmitLockDrop claims the victim under the latch and submits the
// write-back outside it.
func (p *pool) goodSubmitLockDrop(q *storage.SubQueue, buf []byte) error {
	p.mu.Lock()
	victim := p.claimVictim()
	p.mu.Unlock()
	t := q.Submit(storage.Vec{Writes: []storage.Seg{{PID: victim, N: 1, Buf: buf}}})
	return q.Wait(t)
}
