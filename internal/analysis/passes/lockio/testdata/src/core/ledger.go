// Package core exercises lockio's ledger mode: the dedup struct's
// structural mutex must never be held across a WAL append or flush,
// because an append can flush a segment and a flush can checkpoint —
// and the checkpoint snapshots the ledger under this same mutex (ABBA).
// Only the `mu` field of the dedup type is tracked; writer-serialization
// mutexes like decMu order appends and are never taken by the
// checkpoint, so they are out of scope by design.
package core

import (
	"sync"

	"storage"
	"wal"
)

type dedup struct {
	mu     sync.Mutex
	decMu  sync.Mutex
	ledger map[storage.PID]uint64
	w      *wal.Writer
}

type db struct {
	dedup dedup
	dev   storage.Device
}

// ---- violations ----

// badAppendUnderMu logs a refcount batch without dropping the ledger
// mutex first: the append can checkpoint back into d.mu.
func (d *dedup) badAppendUnderMu(txn uint64, payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.w.AppendLSN(txn, wal.RecRefDelta, payload) // want `WAL mutation \(AppendLSN\) while d\.mu is held`
	return err
}

func (d *dedup) badFlushUnderMu() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.Flush() // want `WAL mutation \(Flush\) while d\.mu is held`
}

// badOneHop reaches the append through a same-package helper.
func (d *dedup) logNow(txn uint64, payload []byte) {
	d.w.AppendLSN(txn, wal.RecRefDelta, payload)
}

func (d *dedup) badOneHop(txn uint64, payload []byte) {
	d.mu.Lock()
	d.logNow(txn, payload) // want `call to logNow performs WAL mutation \(AppendLSN\) while d\.mu is held`
	d.mu.Unlock()
}

// badDeviceUnderMu: plain device I/O under the ledger mutex is just as
// forbidden as it is under a pool latch.
func (db *db) badDeviceUnderMu(buf []byte) error {
	db.dedup.mu.Lock()
	defer db.dedup.mu.Unlock()
	return db.dev.ReadPages(1, 1, buf) // want `device I/O \(ReadPages\) while db\.dedup\.mu is held`
}

// ---- conforming code ----

// goodUnlockThenAppend is the engine's real discipline (tryDedup,
// applyFrees): compute the batch under the mutex, drop it, then log.
func (d *dedup) goodUnlockThenAppend(txn uint64, payload []byte) error {
	d.mu.Lock()
	d.ledger[1] = 2
	d.mu.Unlock()
	_, err := d.w.AppendLSN(txn, wal.RecRefDelta, payload)
	return err
}

// goodDecMuAppend mirrors logDecs: decMu serializes the decrement
// writer and is never taken by the checkpoint, so appending under it is
// the intended design.
func (d *dedup) goodDecMuAppend(txn uint64, payload []byte) error {
	d.decMu.Lock()
	defer d.decMu.Unlock()
	_, err := d.w.AppendLSN(txn, wal.RecRefDelta, payload)
	return err
}

// goodBookkeeping: map mutation under the mutex without I/O.
func (d *dedup) goodBookkeeping(pid storage.PID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ledger[pid]
}
