// Package storage is a fixture stub of the engine's device layer: the
// analyzers recognize I/O calls by package name, method name, and shape.
package storage

type PID uint64

type Seg struct {
	PID PID
	N   int
	Buf []byte
}

type Device interface {
	ReadPages(pid PID, n int, buf []byte) error
	WritePages(pid PID, n int, buf []byte) error
	ReadPagesVec(segs []Seg) error
	WritePagesVec(segs []Seg) error
	Sync() error
}

func ReadVec(d Device, segs []Seg) error  { return d.ReadPagesVec(segs) }
func WriteVec(d Device, segs []Seg) error { return d.WritePagesVec(segs) }
