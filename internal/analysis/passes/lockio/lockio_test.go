package lockio_test

import (
	"testing"

	"blobdb/internal/analysis/analysistest"
	"blobdb/internal/analysis/passes/lockio"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockio.Analyzer, "buffer", "other")
}
