// Package nondet checks that the crash-simulation harness, the reference
// model, and the simtime-metered engine packages stay deterministic: a
// (trace-seed, crashpoint) schedule must replay bit-identically, or the
// one-line replay invocation printed for a failing schedule reproduces a
// different run than the one that failed.
//
// Three classes of nondeterminism are flagged:
//
//   - wall-clock reads: time.Now / Since / Until and timer constructors.
//     Engine time flows through simtime meters; wall-clock is only
//     legitimate for operator-facing stats counters, which carry a
//     //blobvet:allow comment naming the counter.
//   - ambient entropy: the global math/rand source (seeded process-wide),
//     crypto/rand, and process-identity reads (os.Getpid, os.Hostname).
//     Seeded generators — rand.New(rand.NewSource(seed)) — are the
//     blessed pattern and are not flagged.
//   - map-iteration-order-dependent results (crashsim and refmodel only):
//     returning a value from inside a range over a map reports whichever
//     offending element Go's randomized iteration happens to visit first,
//     so the same violation prints different messages on different runs.
//     Collect-then-sort loops are fine and not flagged.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/passes/internal/storageio"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: `forbid wall-clock, ambient entropy, and map-order-dependent output in deterministic paths

Crash schedules replay by (trace-seed, crashpoint); any hidden input —
time.Now, the global rand source, process identity, or map iteration
order feeding a result — breaks bit-identical replay.`,
	Run: run,
}

// scopePkgs are the deterministic-replay packages: the harness, the
// reference model, and the simtime-metered engine layers.
var scopePkgs = map[string]bool{
	"crashsim": true,
	"refmodel": true,
	"buffer":   true,
	"blob":     true,
	"core":     true,
	"wal":      true,
	"storage":  true,
	"extent":   true,
}

// mapIterPkgs is the narrower scope of the map-iteration rule: the
// harness and reference model, whose failure output is the replay
// contract.
var mapIterPkgs = map[string]bool{
	"crashsim": true,
	"refmodel": true,
}

// wallClock are the time package functions that read or schedule against
// the wall clock. Conversions and constants (time.Duration, time.Unix)
// are deterministic and fine.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// identity are the os package process-identity/environment entropy reads.
var identity = map[string]bool{
	"Getpid":   true,
	"Getppid":  true,
	"Getuid":   true,
	"Geteuid":  true,
	"Getgid":   true,
	"Hostname": true,
	"Environ":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pkgBase := storageio.Base(pass.Pkg.Path())
	if !scopePkgs[pkgBase] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				if mapIterPkgs[pkgBase] {
					checkMapRange(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. a seeded *rand.Rand, time.Time.Sub) are fine
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[name] {
			pass.Reportf(call.Pos(), "wall-clock read time.%s in a deterministic-replay path; meter through simtime instead", name)
		}
	case "math/rand", "math/rand/v2":
		// Constructors build seeded sources — the blessed pattern.
		if strings.HasPrefix(name, "New") {
			return
		}
		pass.Reportf(call.Pos(), "global math/rand source (rand.%s) is process-seeded; use rand.New(rand.NewSource(seed)) so replays are deterministic", name)
	case "crypto/rand":
		pass.Reportf(call.Pos(), "crypto/rand.%s is irreproducible entropy; deterministic paths must derive randomness from the schedule seed", name)
	case "os":
		if identity[name] {
			pass.Reportf(call.Pos(), "process identity read os.%s differs across replays; thread identity through the schedule instead", name)
		}
	}
}

// checkMapRange flags `for k, v := range m { ... return ...v... }`: which
// element triggers the return depends on randomized map order.
func checkMapRange(pass *analysis.Pass, r *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[r.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt, *ast.ForStmt:
			return false // nested loops judge their own subjects
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				pass.Reportf(n.Pos(), "return from inside iteration over an unordered map: the reported element depends on map order and breaks replay-stable output; iterate sorted keys")
			}
		}
		return true
	})
}
