// Package crashsim exercises the nondet analyzer: wall-clock reads,
// ambient entropy, process identity, and //blobvet:allow handling.
package crashsim

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

// ---- violations ----

func wallClock() int64 {
	t0 := time.Now() // want `wall-clock read time.Now in a deterministic-replay path`
	return t0.UnixNano()
}

func wallClockSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since in a deterministic-replay path`
}

func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand source \(rand.Intn\) is process-seeded`
}

func cryptoEntropy(buf []byte) {
	crand.Read(buf) // want `crypto/rand.Read is irreproducible entropy`
}

func processIdentity() int {
	return os.Getpid() // want `process identity read os.Getpid differs across replays`
}

// ---- suppression handling ----

// allowedWallClock shows a reasoned allow: the diagnostic on the next
// line is suppressed and auditable in-tree.
func allowedWallClock() time.Time {
	//blobvet:allow operator-facing stats counter only; never feeds the schedule
	return time.Now()
}

func allowedSameLine() time.Time {
	return time.Now() //blobvet:allow operator-facing stats counter only
}

// A reason-less //blobvet:allow neither suppresses nor passes — it is
// itself a diagnostic. That case is covered by TestBareAllow in
// internal/analysis/driver, since the diagnostic lands on the comment's
// own line, which a `// want` expectation cannot share.

// ---- conforming code ----

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

func durationMath(d time.Duration) time.Duration {
	return d * time.Millisecond / 2 // constants and arithmetic are deterministic
}

func methodOnSeeded(rng *rand.Rand) int {
	return rng.Int() // method on a seeded source, not the global one
}
