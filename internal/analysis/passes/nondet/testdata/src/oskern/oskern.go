// Package oskern is outside the nondet scope: OS-simulation baselines
// legitimately read the wall clock.
package oskern

import "time"

func stamp() int64 { return time.Now().UnixNano() }
