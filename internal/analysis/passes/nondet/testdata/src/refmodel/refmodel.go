// Package refmodel pins the real engine finding nondet surfaced: the
// reference model's Verify returned its error from inside a range over
// the snapshot map, so which offending key a failing schedule reported
// depended on Go's randomized map order — the replay log named a
// different key each run (internal/crashsim/refmodel, fixed in this
// change by iterating sorted keys).
package refmodel

import (
	"fmt"
	"sort"
)

type keyState struct {
	old, new []byte
}

// verifyUnsorted is the pre-fix shape of refmodel.Verify.
func verifyUnsorted(snapshot map[string][]byte, keys map[string]keyState) error {
	for key := range snapshot {
		if _, ok := keys[key]; !ok {
			return fmt.Errorf("unexpected key %q in recovered image", key) // want `return from inside iteration over an unordered map`
		}
	}
	for key := range keys {
		if _, ok := snapshot[key]; !ok {
			return fmt.Errorf("key %q lost by recovery", key) // want `return from inside iteration over an unordered map`
		}
	}
	return nil
}

// verifySorted is the fixed shape: deterministic first-offender output.
func verifySorted(snapshot map[string][]byte, keys map[string]keyState) error {
	names := make([]string, 0, len(snapshot))
	for key := range snapshot {
		names = append(names, key)
	}
	sort.Strings(names)
	for _, key := range names {
		if _, ok := keys[key]; !ok {
			return fmt.Errorf("unexpected key %q in recovered image", key)
		}
	}
	return nil
}

// reconcile mutates every element: no order-dependent result, no report.
func reconcile(keys map[string]keyState) {
	for key, ks := range keys {
		ks.old = ks.new
		keys[key] = ks
	}
}
