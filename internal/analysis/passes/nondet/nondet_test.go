package nondet_test

import (
	"testing"

	"blobdb/internal/analysis/analysistest"
	"blobdb/internal/analysis/passes/nondet"
)

func TestNonDet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nondet.Analyzer, "crashsim", "refmodel", "oskern")
}
