// Package summary computes a per-function effect summary — the
// interprocedural substrate every other blobvet analyzer builds on. For
// each package-level function and method it records:
//
//   - the lock classes it acquires (and which classes are must-held at
//     each acquisition site — the intra-function ordering edges);
//   - every resolvable call it makes, with the lock classes must-held at
//     the call site (the inter-function ordering and I/O-context edges);
//   - the device I/O, submission-queue, and WAL-writer mutations it
//     performs directly;
//   - bindings of function-typed struct fields to concrete functions
//     (db.wal.OnCheckpoint = db.writeCheckpoint), which is how the WAL
//     calls back into the engine — the dynamic edge the lock-order
//     analyzer must see to find checkpoint reentry;
//   - whether it returns a caller-owned buffer-pool pin, and which of
//     its parameters it releases (the frame-helper contract).
//
// The analyzer reports nothing itself. It exports one FuncSummary fact
// per function with any effect, and the consuming analyzers (lockorder,
// lockio, walorder, framerelease) read the whole stream back through
// Pass.AllObjectFacts — enumeration, not per-object import, because the
// unexported dependency functions these chains run through do not exist
// as objects in gc export data.
//
// Must-held lock state is an intersection-merge CFG fixpoint (the same
// discipline lockio uses): a lock released on any path to a point is
// not held there, so the engine's lock-drop windows do not manufacture
// false edges. Function literals are skipped (they run later, under
// their own discipline), as are `go` statements (the child goroutine
// does not inherit the spawner's locks) and deferred calls (they run at
// return; a deferred Unlock conservatively keeps the lock held in the
// body, exactly the safe direction).
package summary

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/cfg"
	"blobdb/internal/analysis/passes/internal/locks"
	"blobdb/internal/analysis/passes/internal/storageio"
)

var Analyzer = &analysis.Analyzer{
	Name: "summary",
	Doc: `compute per-function effect summaries for the interprocedural analyzers

Records, per function: lock classes acquired (with the classes held at
each acquisition), resolvable calls with the must-held lock set at each
call site, direct device/queue/WAL effects, function-field bindings, and
the frame pin/release contract. Produces facts only; reports nothing.`,
	Run:       run,
	FactTypes: []analysis.Fact{(*FuncSummary)(nil)},
}

// A FuncSummary is the exported effect summary of one function. All
// positions are pre-rendered strings: token.Pos values are meaningless
// across type-check sessions (each vet unit has its own FileSet), while
// "file:line:col" survives any boundary and is only ever displayed.
type FuncSummary struct {
	Acquires []Acquire // lock classes this function itself acquires
	Calls    []Call    // resolvable calls, with must-held lock classes
	IO       []Effect  // direct device I/O
	Queue    []Effect  // direct submission-queue ops (blocking)
	WAL      []Effect  // direct WAL-writer mutation
	Binds    []Bind    // function-typed field bindings made here
	Unlocks  []string  // lock classes released without a local acquisition (caller-held drops)
	Pins     string    // non-empty: returns a pin from this Fix entry point
	Releases []int     // parameter indices this function releases
}

func (*FuncSummary) AFact() {}

func (s *FuncSummary) empty() bool {
	return len(s.Acquires) == 0 && len(s.Calls) == 0 && len(s.IO) == 0 &&
		len(s.Queue) == 0 && len(s.WAL) == 0 && len(s.Binds) == 0 &&
		len(s.Unlocks) == 0 && s.Pins == "" && len(s.Releases) == 0
}

// An Acquire is one lock acquisition site.
type Acquire struct {
	Class string   // canonical lock class (locks.Class)
	RLock bool     // read side of an RWMutex
	Held  []string // classes must-held when this acquire runs (sorted, excl. Class)
	Pos   string
}

// A Call is one resolvable call site.
type Call struct {
	PkgPath string   // callee's package (for fields: the field owner's package)
	ObjPath string   // callee's ObjectPath; for fields: "Type.Field"
	Field   bool     // call through a function-typed struct field
	Held    []string // classes must-held at the call (sorted)
	Pos     string
}

// An Effect is one direct device/queue/WAL operation.
type Effect struct {
	Op  string
	Pos string
}

// A Bind records `x.F = fn`: a function-typed field of a named struct
// bound to a concrete function, turning later calls through the field
// into edges to fn.
type Bind struct {
	FieldPkg  string // package of the field's owning type
	FieldPath string // "Type.Field"
	PkgPath   string // bound function's package
	ObjPath   string // bound function's ObjectPath
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil || analysis.ObjectPath(obj) == "" {
				continue
			}
			s := summarize(pass, fn)
			if !s.empty() {
				pass.ExportObjectFact(obj, s)
			}
		}
	}
	return nil, nil
}

func summarize(pass *analysis.Pass, fn *ast.FuncDecl) *FuncSummary {
	s := &FuncSummary{}
	c := &collector{pass: pass, s: s, seenCalls: map[string]bool{}, seenFx: map[string]bool{}, seenUnlocks: map[string]bool{}}

	g := cfg.New(fn.Body)
	if g == nil {
		// goto in the body: no flow-sensitive lock state; collect effects
		// with an empty (conservatively unknown) held set.
		c.walk(state{}, fn.Body)
	} else {
		// Must-held fixpoint, then one collection pass on the converged
		// per-block in-states (held sets only shrink during iteration, so
		// collecting earlier could record edges a later pass disproves).
		in := map[*cfg.Block]state{g.Entry: {}}
		work := []*cfg.Block{g.Entry}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			st := in[b].clone()
			for _, n := range b.Nodes {
				c.apply(st, n, false)
			}
			for _, e := range b.Succs {
				if merged, changed := intersect(in[e.To], st.clone()); changed {
					in[e.To] = merged
					work = append(work, e.To)
				}
			}
		}
		for _, b := range g.Blocks {
			st := in[b]
			if st == nil {
				continue
			}
			st = st.clone()
			for _, n := range b.Nodes {
				c.apply(st, n, true)
			}
		}
	}

	c.scanBinds(fn.Body)
	c.scanPinContract(fn)
	sort.Strings(s.Unlocks)
	sort.Slice(s.Releases, func(i, j int) bool { return s.Releases[i] < s.Releases[j] })
	return s
}

// state is the set of lock classes must-held at a point.
type state map[string]bool

func (s state) clone() state {
	c := make(state, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s state) sorted(excl string) []string {
	var out []string
	for k := range s {
		if k != excl {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// intersect merges a successor's incoming state for a must-analysis;
// reports whether old changed. old == nil means unvisited.
func intersect(old, add state) (state, bool) {
	if old == nil {
		return add, true
	}
	changed := false
	for k := range old {
		if !add[k] {
			delete(old, k)
			changed = true
		}
	}
	return old, changed
}

type collector struct {
	pass        *analysis.Pass
	s           *FuncSummary
	seenCalls   map[string]bool
	seenFx      map[string]bool
	seenUnlocks map[string]bool
}

func (c *collector) pos(n ast.Node) string {
	return c.pass.Fset.Position(n.Pos()).String()
}

// apply threads one CFG node through the lock state; when record is set
// it also collects acquires, effects, and call sites.
func (c *collector) apply(st state, n ast.Node, record bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // runs later, under its own discipline
		case *ast.DeferStmt:
			return false // runs at return; a deferred Unlock keeps the lock held here
		case *ast.GoStmt:
			return false // the goroutine does not inherit the spawner's locks
		case *ast.CallExpr:
			c.call(st, m, record)
		}
		return true
	})
}

// walk is the no-CFG fallback (goto in the body): same collection with
// flow-insensitive (empty) held sets.
func (c *collector) walk(st state, body ast.Node) {
	c.apply(st, body, true)
}

func (c *collector) call(st state, call *ast.CallExpr, record bool) {
	if op, ok := locks.Match(c.pass.TypesInfo, call); ok {
		if op.Class == "" {
			return // local mutex: invisible interprocedurally
		}
		switch op.Name {
		case "Lock", "RLock":
			if record {
				c.s.Acquires = append(c.s.Acquires, Acquire{
					Class: op.Class,
					RLock: op.Name == "RLock",
					Held:  st.sorted(op.Class),
					Pos:   c.pos(call),
				})
			}
			st[op.Class] = true
		case "Unlock", "RUnlock":
			if record && !st[op.Class] && !c.seenUnlocks[op.Class] {
				// Releasing a lock this body never must-acquired: the lock
				// belongs to the caller. That is the claim/unlock/write-back/
				// relock protocol's signature, and lockio uses it to tell a
				// conforming lock-drop helper from I/O smuggled under a latch.
				c.seenUnlocks[op.Class] = true
				c.s.Unlocks = append(c.s.Unlocks, op.Class)
			}
			delete(st, op.Class)
		}
		return
	}
	if !record {
		return
	}
	if op, ok := storageio.Classify(c.pass.TypesInfo, call); ok {
		fx := Effect{Op: op, Pos: c.pos(call)}
		if storageio.IsQueueOp(op) {
			c.addEffect(&c.s.Queue, "q", fx)
		} else {
			c.addEffect(&c.s.IO, "io", fx)
		}
		// Fall through: an effect call is still a call. wal.Writer.AppendLSN
		// is classified as a WAL effect for walorder, but it is also the
		// entry to the append→flush→checkpoint chain lockorder must walk.
	} else if op, ok := storageio.ClassifyWAL(c.pass.TypesInfo, call); ok {
		c.addEffect(&c.s.WAL, "wal", Effect{Op: op, Pos: c.pos(call)})
	}
	pkg, path, field, ok := callee(c.pass, call)
	if !ok {
		return
	}
	key := pkg + "\x00" + path + "\x00" + strings.Join(st.sorted(""), ",")
	if c.seenCalls[key] {
		return
	}
	c.seenCalls[key] = true
	c.s.Calls = append(c.s.Calls, Call{
		PkgPath: pkg,
		ObjPath: path,
		Field:   field,
		Held:    st.sorted(""),
		Pos:     c.pos(call),
	})
}

func (c *collector) addEffect(dst *[]Effect, kind string, fx Effect) {
	key := kind + "\x00" + fx.Op
	if c.seenFx[key] {
		return
	}
	c.seenFx[key] = true
	*dst = append(*dst, fx)
}

// Resolve maps a call to the fact address of its static callee — a
// package-level function or a method of a package-level named type.
// Calls through function-typed fields are not resolved here (lockorder
// walks those through Binds). Shared by every summary consumer that
// needs to look a call site up in the fact stream.
func Resolve(info *types.Info, call *ast.CallExpr) (pkg, path string, ok bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if selection := info.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return "", "", false
	}
	pkg, path, _, ok = factAddr(fn)
	return pkg, path, ok
}

// callee resolves a call to a fact-addressable target: a package-level
// function, a method of a package-level named type, or a function-typed
// field of one (Field=true; lockorder resolves those through Binds).
func callee(pass *analysis.Pass, call *ast.CallExpr) (pkg, path string, field, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, k := pass.TypesInfo.Uses[fun].(*types.Func); k {
			return factAddr(fn)
		}
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			switch obj := selection.Obj().(type) {
			case *types.Func:
				return factAddr(obj)
			case *types.Var:
				// Call through a function-typed field: w.OnCheckpoint(...).
				if !obj.IsField() {
					return "", "", false, false
				}
				tn := namedOf(pass.TypesInfo.TypeOf(fun.X))
				if tn == nil || tn.Pkg() == nil {
					return "", "", false, false
				}
				return tn.Pkg().Path(), tn.Name() + "." + obj.Name(), true, true
			}
			return "", "", false, false
		}
		if fn, k := pass.TypesInfo.Uses[fun.Sel].(*types.Func); k {
			return factAddr(fn) // qualified package function
		}
	}
	return "", "", false, false
}

func factAddr(fn *types.Func) (string, string, bool, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return "", "", false, false
	}
	p := analysis.ObjectPath(fn)
	if p == "" {
		return "", "", false, false
	}
	return fn.Pkg().Path(), p, false, true
}

// scanBinds records every `x.F = fn` where F is a function-typed field
// of a named struct and fn resolves to a fact-addressable function.
// Closures are scanned too: a binding made inside one is still a
// binding the program performs.
func (c *collector) scanBinds(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			fv, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok || !fv.IsField() {
				continue
			}
			if _, isSig := fv.Type().Underlying().(*types.Signature); !isSig {
				continue
			}
			tn := namedOf(c.pass.TypesInfo.TypeOf(sel.X))
			if tn == nil || tn.Pkg() == nil {
				continue
			}
			var bound *types.Func
			switch rhs := as.Rhs[i].(type) {
			case *ast.Ident:
				bound, _ = c.pass.TypesInfo.Uses[rhs].(*types.Func)
			case *ast.SelectorExpr:
				if s2 := c.pass.TypesInfo.Selections[rhs]; s2 != nil {
					bound, _ = s2.Obj().(*types.Func) // method value db.writeCheckpoint
				} else {
					bound, _ = c.pass.TypesInfo.Uses[rhs.Sel].(*types.Func)
				}
			}
			if bound == nil {
				continue
			}
			bp, bpath, _, ok := factAddr(bound)
			if !ok {
				continue
			}
			c.s.Binds = append(c.s.Binds, Bind{
				FieldPkg:  tn.Pkg().Path(),
				FieldPath: tn.Name() + "." + fv.Name(),
				PkgPath:   bp,
				ObjPath:   bpath,
			})
		}
		return true
	})
}

// scanPinContract fills Pins and Releases: does this function hand a
// buffer-pool pin to its caller, and which parameters does it release?
// Both are deliberately syntactic — helpers that wrap FixExtent or drop
// frames are one-screen functions; a helper too clever for this scan is
// a helper the framerelease contract wants rewritten anyway.
func (c *collector) scanPinContract(fn *ast.FuncDecl) {
	info := c.pass.TypesInfo

	// fixVars: variables bound to a Fix-family result in this body.
	fixVars := map[types.Object]string{}
	released := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if name, ok := fixFamilyCall(c.pass, call); ok {
						if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							if obj := objOf(info, id); obj != nil {
								fixVars[obj] = name
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && len(n.Args) == 0 {
				switch x := sel.X.(type) {
				case *ast.Ident:
					if obj := info.Uses[x]; obj != nil {
						released[obj] = true
					}
				case *ast.IndexExpr:
					if id, ok := x.X.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							released[obj] = true // frames[i].Release() in a loop
						}
					}
				}
			}
		}
		return true
	})

	// Pins: a return statement hands back a Fix result (directly, or via a
	// variable the body never releases).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if call, ok := r.(*ast.CallExpr); ok {
				if name, ok := fixFamilyCall(c.pass, call); ok {
					c.s.Pins = name
				}
				continue
			}
			if id, ok := r.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if name, fixed := fixVars[obj]; fixed && !released[obj] {
						c.s.Pins = name
					}
				}
			}
		}
		return true
	})

	// Releases: parameters (by index) released in this body, including
	// range-releases over slice parameters.
	idx := 0
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				obj := info.Defs[name]
				if obj != nil && (released[obj] || rangeReleasesParam(info, fn.Body, obj)) {
					c.s.Releases = append(c.s.Releases, idx)
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
}

// rangeReleasesParam reports whether the body contains
// `for _, v := range param { ... v.Release() ... }`.
func rangeReleasesParam(info *types.Info, body *ast.BlockStmt, param types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok || found {
			return !found
		}
		if id, ok := r.X.(*ast.Ident); !ok || info.Uses[id] != param {
			return true
		}
		valID, ok := r.Value.(*ast.Ident)
		if !ok {
			return true
		}
		valObj := info.Defs[valID]
		ast.Inspect(r.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == valObj {
					found = true
				}
			}
			return true
		})
		return true
	})
	return found
}

// fixFamilyCall matches Pool.FixExtent / FixExtents / CreateExtent from
// a buffer-pool package other than the one under analysis (the pool's
// own internals manage pins below the Fix contract), two results.
func fixFamilyCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "FixExtent" && name != "FixExtents" && name != "CreateExtent" {
		return "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return "", false
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg() == pass.Pkg {
		return "", false
	}
	if storageio.Base(m.Pkg().Path()) != "buffer" {
		return "", false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return "", false
	}
	return name, true
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
