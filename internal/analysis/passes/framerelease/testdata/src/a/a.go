// Package a exercises the framerelease analyzer: leaks, double releases,
// discarded results, and the conforming patterns the engine actually uses.
package a

import (
	"errors"

	"buffer"
)

// ---- violations ----

func leakOnEarlyReturn(p *buffer.Pool, bad bool) error {
	f, err := p.FixExtent(1, 2) // want `frame fixed by FixExtent is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("forgot the frame") // leak path
	}
	f.Release()
	return nil
}

func leakFallOffEnd(p *buffer.Pool) {
	f, _ := p.FixExtent(1, 1) // want `frame fixed by FixExtent is not released on every path`
	f.ReadAt(nil, 0)
}

func leakBatch(p *buffer.Pool, bad bool) error {
	frames, err := p.FixExtents([]uint64{1, 2}) // want `frames fixed by FixExtents is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("batch leaked")
	}
	for _, f := range frames {
		f.Release()
	}
	return nil
}

func discarded(p *buffer.Pool) {
	p.FixExtent(1, 1) // want `result of FixExtent is discarded`
}

func discardedBlank(p *buffer.Pool) error {
	_, err := p.FixExtent(1, 1) // want `result of FixExtent is discarded`
	return err
}

func doubleRelease(p *buffer.Pool) {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return
	}
	f.Release()
	f.Release() // want `may already be released on this path; releasing twice corrupts the pin count`
}

func doubleReleaseDefer(p *buffer.Pool) {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return
	}
	defer f.Release()
	f.Release() // want `released here and again by a deferred Release`
}

func overwriteBeforeRelease(p *buffer.Pool) {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return
	}
	f, err = p.FixExtent(2, 1) // want `frame fixed by FixExtent is overwritten before being released`
	if err != nil {
		return
	}
	f.Release()
}

// leakInCommitErrorPath pins the shape of the real engine bug fixed in
// this change: Txn.Commit's synchronous path (and failCommit in the
// async pipeline) released its locks but not its pending frames when
// the WAL write or extent flush failed, leaving evict-protected pins
// behind (internal/core/txn.go, internal/core/asynccommit.go).
func leakInCommitErrorPath(p *buffer.Pool, writeWAL func() error) error {
	f, err := p.FixExtent(7, 2) // want `frame fixed by FixExtent is not released on every path`
	if err != nil {
		return err
	}
	f.WriteAt(nil, 0)
	if err := writeWAL(); err != nil {
		// releaseLocks() happened here, but not f.Release().
		return err
	}
	f.Release()
	return nil
}

// leakCloneOnFlushError pins the relocation hazard this analyzer was
// extended for: the defragmenter's per-move protocol (pin source → copy
// into a created clone → flush → release) leaks the evict-protected
// clone frame if the flush error path forgets the release
// (internal/core/relocate.go is the real-tree shape).
func leakCloneOnFlushError(p *buffer.Pool, pid uint64) error {
	clone, err := p.CreateExtent(pid, 4) // want `frame created by CreateExtent is not released on every path`
	if err != nil {
		return err
	}
	clone.WriteAt(nil, 0)
	if err := p.FlushExtent(clone); err != nil {
		p.Drop(pid) // returned the slot, forgot the pin
		return err
	}
	clone.Release()
	return nil
}

func discardedCreate(p *buffer.Pool) {
	p.CreateExtent(3, 1) // want `result of CreateExtent is discarded`
}

// ---- conforming code ----

// relocateMove is the conforming defragmenter move: both the source pin
// and the created clone are released on every path, including the flush
// error path.
func relocateMove(p *buffer.Pool, src, dst uint64) error {
	old, err := p.FixExtent(src, 4)
	if err != nil {
		return err
	}
	clone, err := p.CreateExtent(dst, 4)
	if err != nil {
		old.Release()
		return err
	}
	old.ReadAt(nil, 0)
	clone.WriteAt(nil, 0)
	old.Release()
	if err := p.FlushExtent(clone); err != nil {
		clone.Release()
		p.Drop(dst)
		return err
	}
	clone.Release()
	return nil
}

func straightLine(p *buffer.Pool) error {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return err
	}
	f.ReadAt(nil, 0)
	f.Release()
	return nil
}

func deferred(p *buffer.Pool) error {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return err
	}
	defer f.Release()
	f.ReadAt(nil, 0)
	return nil
}

func guardedRelease(p *buffer.Pool) {
	f, _ := p.FixExtent(1, 1)
	if f != nil {
		f.Release()
	}
}

// accumulate is the bench/concread shape: per-iteration frames move into
// a slice, which is released element-wise on both the error path and the
// happy path.
func accumulate(p *buffer.Pool, n int) error {
	frames := make([]*buffer.Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := p.FixExtent(uint64(i), 1)
		if err != nil {
			for _, g := range frames {
				g.Release()
			}
			return err
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		f.Release()
	}
	return nil
}

// errTriage is the blob/compare hashContent shape: a tagless switch over
// the fix error, where reaching the second case implies err != nil and
// hence no frame was returned.
func errTriage(p *buffer.Pool) error {
	f, err := p.FixExtent(1, 4)
	switch {
	case err == nil:
		defer f.Release()
		f.ReadAt(nil, 0)
		return nil
	case errors.Is(err, buffer.ErrPoolFull):
		return nil // retry later; nothing was fixed
	default:
		return err
	}
}

// escapeToCaller transfers ownership out: not this function's obligation.
func escapeToCaller(p *buffer.Pool) (*buffer.Frame, error) {
	return p.FixExtent(1, 1)
}

func escapeToField(p *buffer.Pool, h *holder) error {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return err
	}
	h.frame = f
	return nil
}

func escapeToCallee(p *buffer.Pool, sink func(*buffer.Frame)) error {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return err
	}
	sink(f)
	return nil
}

func releaseByIndex(p *buffer.Pool) error {
	frames, err := p.FixExtents([]uint64{1, 2, 3})
	if err != nil {
		return err
	}
	for _, f := range frames {
		f.ReadAt(nil, 0)
	}
	for i := range frames {
		frames[i].Release()
	}
	return nil
}

type holder struct{ frame *buffer.Frame }

// fixIntoField pins the blob comparator's contentStream shape: the fix
// result is stored straight into a struct field, so ownership moves to
// the holder and release happens through it later. Not a discard.
func fixIntoField(h *holder, p *buffer.Pool) error {
	var err error
	h.frame, err = p.FixExtent(7, 4)
	if err != nil {
		return err
	}
	h.frame.ReadAt(nil, 0)
	return nil
}

// fixIntoSlot does the same through a slice element.
func fixIntoSlot(slots []*buffer.Frame, p *buffer.Pool) error {
	var err error
	slots[0], err = p.FixExtent(9, 1)
	return err
}

// ---- helper boundaries (summary pin/release contract) ----

// fetchBlock pins and hands the frame to its caller: the release
// obligation transfers with it (summary: Pins=FixExtent).
func fetchBlock(p *buffer.Pool, pid uint64) (*buffer.Frame, error) {
	return p.FixExtent(pid, 1)
}

// fetchBatch transfers a batch obligation (summary: Pins=FixExtents).
func fetchBatch(p *buffer.Pool, pids []uint64) ([]*buffer.Frame, error) {
	return p.FixExtents(pids)
}

// dropFrame releases its parameter (summary: Releases=[0]); callers
// discharge their obligation through it.
func dropFrame(f *buffer.Frame) {
	f.Release()
}

// releaseAll releases every frame in the batch (summary: Releases=[0]).
func releaseAll(frames []*buffer.Frame) {
	for _, f := range frames {
		f.Release()
	}
}

func helperLeak(p *buffer.Pool, bad bool) error {
	f, err := fetchBlock(p, 7) // want `frame fixed by FixExtent is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("leaked through the helper boundary")
	}
	f.Release()
	return nil
}

func helperDiscarded(p *buffer.Pool) {
	fetchBlock(p, 9) // want `result of fetchBlock is discarded; the helper returns a pinned frame \(FixExtent\)`
}

// helperReleaseOK discharges through dropFrame: fix via helper, release
// via helper, every path clean.
func helperReleaseOK(p *buffer.Pool) error {
	f, err := fetchBlock(p, 7)
	if err != nil {
		return err
	}
	f.ReadAt(nil, 0)
	dropFrame(f)
	return nil
}

// helperDoubleRelease: the release through dropFrame counts, so the
// direct Release after it is a double release.
func helperDoubleRelease(p *buffer.Pool) error {
	f, err := p.FixExtent(1, 1)
	if err != nil {
		return err
	}
	dropFrame(f)
	f.Release() // want `may already be released on this path; releasing twice corrupts the pin count`
	return nil
}

// helperBatch: batch fixed through one helper, released through another.
func helperBatch(p *buffer.Pool, pids []uint64) error {
	frames, err := fetchBatch(p, pids)
	if err != nil {
		return err
	}
	releaseAll(frames)
	return nil
}

// helperBatchLeak: the error path before releaseAll leaks the batch.
func helperBatchLeak(p *buffer.Pool, pids []uint64, bad bool) error {
	frames, err := fetchBatch(p, pids) // want `frames fixed by FixExtents is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("batch leaked past the helper")
	}
	releaseAll(frames)
	return nil
}
