// Package buffer is a fixture stub of the engine's buffer-pool API: the
// analyzer recognizes Fix calls by package name, method name, and shape.
package buffer

import "errors"

var ErrPoolFull = errors.New("pool full")

type Frame struct{ pins int }

func (f *Frame) Release()                  {}
func (f *Frame) ReadAt(p []byte, off int)  {}
func (f *Frame) WriteAt(p []byte, off int) {}
func (f *Frame) SetPreventEvict(v bool)    {}
func (f *Frame) Spans() [][]byte           { return nil }

type Pool struct{}

func (p *Pool) FixExtent(pid uint64, npages int) (*Frame, error) {
	return &Frame{}, nil
}

func (p *Pool) FixExtents(pids []uint64) ([]*Frame, error) {
	return nil, nil
}

func (p *Pool) CreateExtent(pid uint64, npages int) (*Frame, error) {
	return &Frame{}, nil
}

func (p *Pool) FlushExtent(f *Frame) error { return nil }

func (p *Pool) Drop(pid uint64) {}
