package framerelease_test

import (
	"testing"

	"blobdb/internal/analysis/analysistest"
	"blobdb/internal/analysis/passes/framerelease"
)

func TestFrameRelease(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), framerelease.Analyzer, "a")
}
