// Package framerelease checks that every buffer frame fixed through
// Pool.FixExtent / Pool.FixExtents — or created through Pool.CreateExtent
// — is released exactly once on every control-flow path.
//
// A fixed frame holds a pin: leaking one wedges eviction (the pool can
// never evict a pinned frame, so a leak on a hot error path eventually
// deadlocks FixExtent under ErrPoolFull), and releasing one twice
// corrupts the pin count. CreateExtent results carry the same obligation
// with higher stakes: created frames are born evict-protected, so the
// relocation clone pin (pin source → copy → flush → release, the online
// defragmenter's per-move protocol) leaks a permanently unevictable
// frame if any error path forgets the release. The invariant lives in
// the Frame API contract; this analyzer makes it machine-checked.
//
// The analysis is a forward dataflow over the function's CFG. Each
// variable bound to a Fix result carries a set of possible states
// {unreleased, released, no-frame, escaped}; branch guards on the paired
// error variable refine the set ("if err != nil" implies no frame was
// returned — both Fix entry points guarantee no pins survive an error,
// including the FixExtents partial-failure unwind). Ownership transfers
// (returning the frame, storing it in a field or collection) end
// tracking conservatively: the analyzer reports only definite protocol
// violations, never guesses.
//
// Helper boundaries are crossed through the summary pass's pin
// contract. A call to a function whose summary says "returns a pin"
// (fetchBlock wrapping FixExtent) binds the obligation to the caller's
// variable exactly as a direct Fix call would — both Fix entry points
// guarantee no pins survive an error, and a conforming wrapper
// propagates that, so the error-refinement logic applies unchanged. A
// call to a function whose summary says "releases parameter i"
// (dropFrame, releaseAll) discharges the obligation at the call site
// instead of escaping the variable — which also lets the double-release
// check see through the helper.
package framerelease

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/cfg"
	"blobdb/internal/analysis/passes/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "framerelease",
	Doc: `check that fixed buffer frames are released exactly once on every path

Every result of Pool.FixExtent / Pool.FixExtents / Pool.CreateExtent
must be Release()d on all paths, including error returns. Leaks pin
frames forever (wedging eviction — created frames are additionally
evict-protected, the relocation clone-pin hazard); double releases
corrupt the pin count. Helpers that fix-and-return or that release a
parameter are understood through their effect summaries, so the
obligation follows the pin across function boundaries.`,
	Run:      run,
	Requires: []*analysis.Analyzer{summary.Analyzer},
}

// vstate is a set of possible frame-ownership states.
type vstate uint8

const (
	sUnreleased vstate = 1 << iota // pin held, release still owed
	sReleased                      // released on this path
	sNoFrame                       // nil / error path: nothing to release
	sEscaped                       // ownership transferred out of the function
)

func run(pass *analysis.Pass) (interface{}, error) {
	sums := map[string]*summary.FuncSummary{}
	for _, of := range pass.AllObjectFacts(summary.Analyzer.Name) {
		if s, ok := of.Fact.(*summary.FuncSummary); ok {
			sums[of.PkgPath+"\x00"+of.ObjPath] = s
		}
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, sums)
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// sums indexes the summary pass's facts by pkg-path\x00obj-path: the
	// helper pin/release contract.
	sums map[string]*summary.FuncSummary
	// pairs maps an error variable to the frame variables assigned in the
	// same Fix call, while those frames are still exactly sUnreleased.
	pairs map[types.Object][]types.Object
	// deferred marks variables with a direct `defer v.Release()`.
	deferred map[types.Object]bool
	// rangeReleased marks range statements whose body releases the
	// iterated collection's elements.
	rangeReleased map[*ast.RangeStmt]bool
	// fixPos remembers where each tracked variable was fixed, and whether
	// it is a batch ([]*Frame) or CreateExtent result, for report wording.
	fixPos    map[types.Object]token.Pos
	fixBatch  map[types.Object]bool
	fixCreate map[types.Object]bool
	reported  map[string]bool
	diags     []analysis.Diagnostic
}

type state map[types.Object]vstate

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, sums map[string]*summary.FuncSummary) {
	c := &checker{
		pass:          pass,
		sums:          sums,
		pairs:         map[types.Object][]types.Object{},
		deferred:      map[types.Object]bool{},
		rangeReleased: map[*ast.RangeStmt]bool{},
		fixPos:        map[types.Object]token.Pos{},
		fixBatch:      map[types.Object]bool{},
		fixCreate:     map[types.Object]bool{},
		reported:      map[string]bool{},
	}

	// Cheap pre-scan: skip functions that never call a Fix API or a
	// pin-returning helper.
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fixKind(pass, call) != fixNone || c.helperPins(call) != "" {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}
	g := cfg.New(fn.Body)
	if g == nil {
		return // contains goto; conservatively skip
	}

	c.preScan(fn.Body)

	// Forward dataflow to fixpoint. States only grow (set union), so the
	// worklist terminates; diagnostics fire on set membership, which is
	// monotone, and are deduplicated.
	in := map[*cfg.Block]state{g.Entry: state{}}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := in[b].clone()
		for _, n := range b.Nodes {
			c.transfer(st, n)
		}
		if b == g.Exit {
			continue
		}
		for _, e := range b.Succs {
			next := st.clone()
			for _, gd := range e.Guards {
				c.refine(next, gd)
			}
			if merged, changed := merge(in[e.To], next); changed {
				in[e.To] = merged
				work = append(work, e.To)
			}
		}
	}

	// Fall-off-the-end paths: returns already checked and neutralized at
	// the return site, so anything still unreleased here leaked by
	// reaching the end of the body.
	if exitSt, ok := in[g.Exit]; ok {
		c.checkLeaks(exitSt)
	}
	for _, d := range c.diags {
		c.pass.Report(d)
	}
}

func merge(old, add state) (state, bool) {
	if old == nil {
		return add, true
	}
	changed := false
	for k, v := range add {
		if old[k]|v != old[k] {
			old[k] |= v
			changed = true
		}
	}
	return old, changed
}

// preScan registers deferred releases, closures (which escape every
// tracked variable they capture), and release-loops over collections.
func (c *checker) preScan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := c.releaseReceiver(n.Call); obj != nil {
				c.deferred[obj] = true
			}
		case *ast.RangeStmt:
			if c.bodyReleasesElements(n) {
				c.rangeReleased[n] = true
			}
		}
		return true
	})
}

// bodyReleasesElements reports whether the range body releases the
// iterated elements: `for _, f := range X { ... f.Release() ... }` or
// `for i := range X { ... X[i].Release() ... }`.
func (c *checker) bodyReleasesElements(r *ast.RangeStmt) bool {
	xObj := identObj(c.pass, r.X)
	if xObj == nil {
		return false
	}
	var valObj, keyObj types.Object
	if id, ok := r.Value.(*ast.Ident); ok {
		valObj = c.pass.TypesInfo.Defs[id]
	}
	if id, ok := r.Key.(*ast.Ident); ok {
		keyObj = c.pass.TypesInfo.Defs[id]
	}
	released := false
	ast.Inspect(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			if valObj != nil && c.pass.TypesInfo.Uses[x] == valObj {
				released = true
			}
		case *ast.IndexExpr:
			if base := identObj(c.pass, x.X); base == xObj {
				if idx, ok := x.Index.(*ast.Ident); ok && keyObj != nil && c.pass.TypesInfo.Uses[idx] == keyObj {
					released = true
				}
			}
		}
		return true
	})
	return released
}

type fixCallKind int

const (
	fixNone fixCallKind = iota
	fixSingle
	fixBatchKind
	fixCreate
)

// fixKind classifies a call as Pool.FixExtent, Pool.FixExtents,
// Pool.CreateExtent, or none of those. The receiver's package must be a
// buffer-pool package (package name "buffer") other than the one under
// analysis: the pool's own internals manage pins below the Fix contract.
func fixKind(pass *analysis.Pass, call *ast.CallExpr) fixCallKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return fixNone
	}
	name := sel.Sel.Name
	if name != "FixExtent" && name != "FixExtents" && name != "CreateExtent" {
		return fixNone
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return fixNone
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg() == pass.Pkg {
		return fixNone
	}
	if base(m.Pkg().Path()) != "buffer" {
		return fixNone
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return fixNone
	}
	switch name {
	case "FixExtent":
		return fixSingle
	case "CreateExtent":
		return fixCreate
	}
	return fixBatchKind
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeSummary looks the call's static callee up in the summary facts.
func (c *checker) calleeSummary(call *ast.CallExpr) *summary.FuncSummary {
	pkg, path, ok := summary.Resolve(c.pass.TypesInfo, call)
	if !ok {
		return nil
	}
	return c.sums[pkg+"\x00"+path]
}

// helperPins reports the Fix entry point a helper call hands back a pin
// from ("FixExtent", "FixExtents", "CreateExtent"), or "". Direct Fix
// calls are excluded — they are handled natively with better positions.
func (c *checker) helperPins(call *ast.CallExpr) string {
	if fixKind(c.pass, call) != fixNone {
		return ""
	}
	if s := c.calleeSummary(call); s != nil {
		return s.Pins
	}
	return ""
}

// helperName names the callee for a diagnostic.
func (c *checker) helperName(call *ast.CallExpr) string {
	_, path, ok := summary.Resolve(c.pass.TypesInfo, call)
	if !ok {
		return "helper"
	}
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// releaseSet returns the callee's released-parameter indices, or nil.
func (c *checker) releaseSet(call *ast.CallExpr) map[int]bool {
	s := c.calleeSummary(call)
	if s == nil || len(s.Releases) == 0 {
		return nil
	}
	m := make(map[int]bool, len(s.Releases))
	for _, i := range s.Releases {
		m[i] = true
	}
	return m
}

// scanArgs scans call arguments, discharging the obligation for any
// tracked variable passed as a parameter the callee's summary releases,
// and escaping the rest as usual.
func (c *checker) scanArgs(st state, call *ast.CallExpr, rel map[int]bool) {
	for i, a := range call.Args {
		if rel != nil && rel[i] {
			if obj := identObj(c.pass, a); obj != nil {
				if _, tracked := st[obj]; tracked {
					c.release(st, obj, a.Pos())
					continue
				}
			}
		}
		c.scanUses(st, a)
	}
}

// isFlushExtent matches Pool.FlushExtent from a buffer-pool package: a
// write through the pin, not an ownership transfer.
func isFlushExtent(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "FlushExtent" {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg() == pass.Pkg {
		return false
	}
	return base(m.Pkg().Path()) == "buffer"
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

// releaseReceiver returns the tracked-candidate receiver object of a
// `v.Release()` call, or nil.
func (c *checker) releaseReceiver(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return c.pass.TypesInfo.Uses[id]
	}
	return nil
}

func (c *checker) reportOnce(pos token.Pos, msg string) {
	key := c.pass.Fset.Position(pos).String() + "\x00" + msg
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.diags = append(c.diags, analysis.Diagnostic{Pos: pos, Message: msg})
}

func (c *checker) noun(obj types.Object) string {
	if c.fixBatch[obj] {
		return "frames fixed by FixExtents"
	}
	if c.fixCreate[obj] {
		return "frame created by CreateExtent"
	}
	return "frame fixed by FixExtent"
}

// transfer applies one CFG node to the state.
func (c *checker) transfer(st state, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.assign(st, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanUses(st, v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if obj := c.releaseReceiver(call); obj != nil {
				if _, tracked := st[obj]; tracked {
					c.release(st, obj, call.Fun.Pos())
					return
				}
			}
			if kind := fixKind(c.pass, call); kind != fixNone {
				// Result dropped entirely: the pin can never be released.
				c.reportOnce(call.Pos(), "result of "+fixName(kind)+" is discarded; the fixed frame can never be released")
				c.scanCallArgs(st, call)
				return
			}
			if pins := c.helperPins(call); pins != "" {
				c.reportOnce(call.Pos(), "result of "+c.helperName(call)+" is discarded; the helper returns a pinned frame ("+pins+") that can never be released")
				c.scanArgs(st, call, c.releaseSet(call))
				return
			}
		}
		c.scanUses(st, n.X)
	case *ast.DeferStmt:
		if obj := c.releaseReceiver(n.Call); obj != nil {
			if _, tracked := st[obj]; tracked {
				return // registered in preScan as a deferred release
			}
		}
		c.scanUses(st, n.Call)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if obj := identObj(c.pass, r); obj != nil {
				if _, tracked := st[obj]; tracked {
					st[obj] = sEscaped // ownership returned to the caller
					continue
				}
			}
			c.scanUses(st, r)
		}
		c.checkLeaks(st)
		// Neutralize so the shared Exit block does not re-report.
		for obj, v := range st {
			if v&sUnreleased != 0 {
				st[obj] = sNoFrame
			}
		}
	case *ast.RangeStmt:
		xObj := identObj(c.pass, n.X)
		if xObj != nil {
			if v, tracked := st[xObj]; tracked {
				// Ranging over a tracked collection: a release-loop
				// discharges the obligation; a read-only loop (ReadAt
				// through the pins) changes nothing. The loop head is
				// re-entered once per abstract iteration, so this is a
				// plain state set, not a double-release check.
				if c.rangeReleased[n] && v&sEscaped == 0 {
					st[xObj] = sReleased
				}
				return
			}
		}
		c.scanUses(st, n.X)
	case ast.Expr:
		c.scanUses(st, n)
	case ast.Stmt:
		ast.Inspect(n, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				c.scanUses(st, e)
				return false
			}
			return true
		})
	}
}

func fixName(k fixCallKind) string {
	switch k {
	case fixBatchKind:
		return "FixExtents"
	case fixCreate:
		return "CreateExtent"
	}
	return "FixExtent"
}

// release transitions obj on an explicit (or loop) release.
func (c *checker) release(st state, obj types.Object, pos token.Pos) {
	v := st[obj]
	if v&sEscaped != 0 {
		return // someone else owns it now; not ours to judge
	}
	if v&sReleased != 0 {
		c.reportOnce(pos, c.noun(obj)+" may already be released on this path; releasing twice corrupts the pin count")
	}
	if c.deferred[obj] {
		c.reportOnce(pos, c.noun(obj)+" is released here and again by a deferred Release")
	}
	st[obj] = sReleased
}

// assign handles Fix-call bindings, append-transfers, and generic
// assignments.
func (c *checker) assign(st state, n *ast.AssignStmt) {
	// Error-variable reassignment invalidates stale (err -> frames)
	// pairings before anything else.
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := objOf(c.pass, id); obj != nil {
				delete(c.pairs, obj)
			}
		}
	}

	if len(n.Rhs) == 1 {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
			if kind := fixKind(c.pass, call); kind != fixNone && len(n.Lhs) == 2 {
				c.scanCallArgs(st, call)
				frameObj := lhsObj(c.pass, n.Lhs[0])
				errObj := lhsObj(c.pass, n.Lhs[1])
				if frameObj == nil {
					if _, isIdent := n.Lhs[0].(*ast.Ident); isIdent {
						// `_, err := pool.FixExtent(...)`: unreachable pin.
						c.reportOnce(call.Pos(), "result of "+fixName(kind)+" is discarded; the fixed frame can never be released")
						return
					}
					// `s.frame, err = pool.FixExtent(...)`: the pin escapes
					// into a field or element; its release happens through
					// that storage location, beyond intraprocedural reach.
					c.scanUses(st, n.Lhs[0])
					return
				}
				if old := st[frameObj]; old&sUnreleased != 0 {
					c.reportOnce(n.Pos(), c.noun(frameObj)+" is overwritten before being released")
				}
				st[frameObj] = sUnreleased
				c.fixPos[frameObj] = call.Pos()
				c.fixBatch[frameObj] = kind == fixBatchKind
				c.fixCreate[frameObj] = kind == fixCreate
				if errObj != nil {
					c.pairs[errObj] = append(c.pairs[errObj], frameObj)
				}
				return
			}
			// Pin-returning helper: the obligation binds here exactly as
			// a direct Fix call would bind it.
			if pins := c.helperPins(call); pins != "" && len(n.Lhs) == 2 {
				c.scanArgs(st, call, c.releaseSet(call))
				frameObj := lhsObj(c.pass, n.Lhs[0])
				errObj := lhsObj(c.pass, n.Lhs[1])
				if frameObj == nil {
					if _, isIdent := n.Lhs[0].(*ast.Ident); isIdent {
						c.reportOnce(call.Pos(), "result of "+c.helperName(call)+" is discarded; the helper returns a pinned frame ("+pins+") that can never be released")
						return
					}
					c.scanUses(st, n.Lhs[0])
					return
				}
				if old := st[frameObj]; old&sUnreleased != 0 {
					c.reportOnce(n.Pos(), c.noun(frameObj)+" is overwritten before being released")
				}
				st[frameObj] = sUnreleased
				c.fixPos[frameObj] = call.Pos()
				c.fixBatch[frameObj] = pins == "FixExtents"
				c.fixCreate[frameObj] = pins == "CreateExtent"
				if errObj != nil {
					c.pairs[errObj] = append(c.pairs[errObj], frameObj)
				}
				return
			}
			// frames = append(frames, f): ownership moves into the
			// collection; the collection inherits the release obligation.
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Lhs) == 1 && len(call.Args) >= 2 {
				dstObj := lhsObj(c.pass, n.Lhs[0])
				srcObj := identObj(c.pass, call.Args[0])
				if dstObj != nil && srcObj == dstObj {
					moved := false
					for _, arg := range call.Args[1:] {
						if obj := identObj(c.pass, arg); obj != nil {
							if _, tracked := st[obj]; tracked {
								st[obj] = sNoFrame // transferred
								moved = true
								continue
							}
						}
						c.scanUses(st, arg)
					}
					if moved {
						if _, tracked := st[dstObj]; !tracked {
							c.fixPos[dstObj] = n.Pos()
							c.fixBatch[dstObj] = true
						}
						st[dstObj] |= sUnreleased
						st[dstObj] &^= sNoFrame
					}
					return
				}
			}
		}
	}
	for _, rhs := range n.Rhs {
		c.scanUses(st, rhs)
	}
	for _, lhs := range n.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			c.scanUses(st, lhs)
		}
	}
}

func lhsObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return objOf(pass, id)
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// scanCallArgs escapes tracked variables passed as arguments.
func (c *checker) scanCallArgs(st state, call *ast.CallExpr) {
	for _, a := range call.Args {
		c.scanUses(st, a)
	}
}

// scanUses walks an expression and marks every "owning" use of a tracked
// variable as escaped. Non-owning uses are exempt: nil comparisons and
// method-call receivers (f.ReadAt(...) reads through the pin without
// transferring it).
func (c *checker) scanUses(st state, e ast.Expr) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			if _, tracked := st[obj]; tracked {
				st[obj] = sEscaped
			}
		}
	case *ast.BinaryExpr:
		if (e.Op == token.EQL || e.Op == token.NEQ) && (isNil(c.pass, e.X) || isNil(c.pass, e.Y)) {
			return // refinement guard, not a use
		}
		c.scanUses(st, e.X)
		c.scanUses(st, e.Y)
	case *ast.CallExpr:
		if isFlushExtent(c.pass, e) {
			// Pool.FlushExtent writes the frame's pages through the pin
			// without taking ownership — the relocation protocol's
			// flush-first step. The caller still owes the Release, so the
			// frame argument is not an escape.
			for _, a := range e.Args {
				if obj := identObj(c.pass, a); obj != nil {
					if _, tracked := st[obj]; tracked {
						continue
					}
				}
				c.scanUses(st, a)
			}
			return
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if obj := receiverBase(c.pass, sel.X); obj != nil {
				if _, tracked := st[obj]; tracked {
					// Method call through the pin (f.ReadAt, frames[i].
					// Release inside a release loop): the receiver is not
					// an escape. Explicit releases are handled by callers
					// that can see statement context.
					c.scanArgs(st, e, c.releaseSet(e))
					return
				}
			}
		}
		c.scanUses(st, e.Fun)
		c.scanArgs(st, e, c.releaseSet(e))
	case *ast.FuncLit:
		// The closure may run (or release) at any time: every captured
		// tracked variable escapes.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
					if _, tracked := st[obj]; tracked {
						st[obj] = sEscaped
					}
				}
			}
			return true
		})
	case *ast.ParenExpr:
		c.scanUses(st, e.X)
	case *ast.UnaryExpr:
		c.scanUses(st, e.X)
	case *ast.StarExpr:
		c.scanUses(st, e.X)
	case *ast.SelectorExpr:
		c.scanUses(st, e.X)
	case *ast.IndexExpr:
		c.scanUses(st, e.X)
		c.scanUses(st, e.Index)
	case *ast.SliceExpr:
		c.scanUses(st, e.X)
		c.scanUses(st, e.Low)
		c.scanUses(st, e.High)
		c.scanUses(st, e.Max)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.scanUses(st, el)
		}
	case *ast.KeyValueExpr:
		c.scanUses(st, e.Value)
	case *ast.TypeAssertExpr:
		c.scanUses(st, e.X)
	}
}

// receiverBase peels index/paren/star wrappers off a method-call receiver
// and returns the underlying variable, so frames[i].ReadAt(...) counts as
// a use through the pin rather than an escape of the collection.
func receiverBase(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilConst
}

// refine narrows the state along a branch guard.
func (c *checker) refine(st state, g cfg.Guard) {
	switch cond := g.Cond.(type) {
	case *ast.BinaryExpr:
		if cond.Op != token.EQL && cond.Op != token.NEQ {
			return
		}
		var varSide ast.Expr
		switch {
		case isNil(c.pass, cond.X):
			varSide = cond.Y
		case isNil(c.pass, cond.Y):
			varSide = cond.X
		default:
			return
		}
		obj := identObj(c.pass, varSide)
		if obj == nil {
			return
		}
		// "x == nil" taken-true and "x != nil" taken-false both mean nil.
		isNilBranch := (cond.Op == token.EQL) == g.Value
		if _, tracked := st[obj]; tracked {
			if isNilBranch {
				st[obj] = sNoFrame
			} else if v := st[obj] &^ sNoFrame; v != 0 {
				st[obj] = v
			}
			return
		}
		if !isNilBranch {
			// err is non-nil: the paired Fix returned no frame (FixExtents
			// unwinds every pin it took before returning an error).
			c.refuteFrames(st, obj)
		}
	case *ast.CallExpr:
		// errors.Is(err, X) / errors.As(err, &y) taken-true implies a
		// non-nil err.
		if !g.Value {
			return
		}
		sel, ok := cond.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Is" && sel.Sel.Name != "As") || len(cond.Args) < 1 {
			return
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "errors" {
			return
		}
		if obj := identObj(c.pass, cond.Args[0]); obj != nil {
			c.refuteFrames(st, obj)
		}
	}
}

// refuteFrames marks every frame paired with errObj (and still exactly
// unreleased) as having no frame to release.
func (c *checker) refuteFrames(st state, errObj types.Object) {
	for _, fo := range c.pairs[errObj] {
		if st[fo] == sUnreleased {
			st[fo] = sNoFrame
		}
	}
}

// checkLeaks reports every tracked variable that may still hold a pin.
func (c *checker) checkLeaks(st state) {
	for obj, v := range st {
		if v&sUnreleased == 0 || c.deferred[obj] {
			continue
		}
		pos := c.fixPos[obj]
		if pos == token.NoPos {
			pos = obj.Pos()
		}
		c.reportOnce(pos, c.noun(obj)+" is not released on every path; a leaked pin wedges eviction")
	}
}
