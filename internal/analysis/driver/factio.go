// factio.go serializes the fact store to and from .vetx-style files.
// The wire format is the one the unitchecker exchanges with cmd/go
// (a gob slice of wireFact), but it lives in the driver so the encode/
// decode path is testable without a vet process around it: the facts
// the interprocedural analyzers ship (nested slices of structs) are
// exactly the shapes gob is pickiest about.
package driver

import (
	"encoding/gob"
	"io"
	"os"

	"blobdb/internal/analysis"
)

// wireFact is the gob wire form of one exported object fact.
type wireFact struct {
	PkgPath  string
	ObjPath  string
	Analyzer string
	Fact     analysis.Fact
}

// WriteFacts serializes the full fact view (the analyzed package's
// exports plus its dependencies') so importers see facts transitively.
func WriteFacts(facts *Facts, w io.Writer) error {
	keys, values := facts.All()
	wire := make([]wireFact, len(keys))
	for i, k := range keys {
		wire[i] = wireFact{PkgPath: k.PkgPath, ObjPath: k.ObjPath, Analyzer: k.Analyzer, Fact: values[i]}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// ReadFacts merges one serialized fact stream into facts. Concrete fact
// types must have been gob-registered (unitchecker registers every
// Analyzer.FactTypes entry before decoding).
func ReadFacts(facts *Facts, r io.Reader) error {
	var wire []wireFact
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return err
	}
	for _, w := range wire {
		facts.Put(FactKey{Analyzer: w.Analyzer, PkgPath: w.PkgPath, ObjPath: w.ObjPath}, w.Fact)
	}
	return nil
}

// WriteFactsFile writes facts to path (the unitchecker's VetxOutput).
func WriteFactsFile(facts *Facts, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFacts(facts, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFactsFile merges one dependency's fact file. A missing or
// unreadable file is treated as empty: the dependency exported nothing.
func ReadFactsFile(facts *Facts, path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	_ = ReadFacts(facts, f) // undecodable ⇒ treat as empty, same as missing
}
