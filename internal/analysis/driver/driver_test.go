package driver_test

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/driver"
)

// calltrap flags every call to a function literally named "bad". It gives
// the suppression tests a diagnostic source with no engine dependencies.
var calltrap = &analysis.Analyzer{
	Name: "calltrap",
	Doc:  "flags calls to functions named bad (test analyzer)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil, nil
	},
}

func loadSnippet(t *testing.T, src string) *driver.Package {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "p.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := driver.NewSourceLoader(token.NewFileSet(), nil)
	pkg, err := loader.Load("p", dir, []string{"p.go"})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func run(t *testing.T, pkg *driver.Package) []driver.Diag {
	t.Helper()
	diags, err := driver.RunPackage(pkg, []*analysis.Analyzer{calltrap}, driver.NewFacts())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// A reasoned //blobvet:allow suppresses diagnostics on its own line and
// the line below it, and nowhere else.
func TestAllowSuppression(t *testing.T) {
	pkg := loadSnippet(t, `package p

func bad() {}

func f() {
	bad()
	//blobvet:allow exercising the suppression scope
	bad()
	bad() //blobvet:allow same-line trailing comment form

	bad()
}
`)
	diags := run(t, pkg)
	var lines []int
	for _, d := range diags {
		if d.Analyzer != "calltrap" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
			continue
		}
		lines = append(lines, d.Pos.Line)
	}
	// Lines 8 (under the reasoned comment) and 9 (trailing comment form)
	// are allowed — an allow covers its own line and the one after it —
	// while lines 6 and 11 must still be reported.
	want := []int{6, 11}
	if len(lines) != len(want) {
		t.Fatalf("got diagnostics on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("got diagnostics on lines %v, want %v", lines, want)
		}
	}
}

// An allow comment with no reason does not suppress anything and is
// itself reported, so exceptions cannot silently accumulate unexplained.
func TestBareAllow(t *testing.T) {
	pkg := loadSnippet(t, `package p

func bad() {}

func f() {
	//blobvet:allow
	bad()
}
`)
	diags := run(t, pkg)
	var gotAllow, gotCall bool
	for _, d := range diags {
		switch d.Analyzer {
		case "allow":
			gotAllow = true
			if !strings.Contains(d.Message, "requires a reason") {
				t.Errorf("bare allow message = %q, want it to demand a reason", d.Message)
			}
			if d.Pos.Line != 6 {
				t.Errorf("bare allow reported on line %d, want 6", d.Pos.Line)
			}
		case "calltrap":
			gotCall = true
			if d.Pos.Line != 7 {
				t.Errorf("call diagnostic on line %d, want 7 (bare allow must not suppress)", d.Pos.Line)
			}
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if !gotAllow {
		t.Error("reason-less //blobvet:allow was not reported")
	}
	if !gotCall {
		t.Error("diagnostic under a bare allow was suppressed; bare allows must not suppress")
	}
}

// Whitespace-only "reasons" count as bare.
func TestAllowBlankReasonIsBare(t *testing.T) {
	pkg := loadSnippet(t, `package p

func bad() {}

func f() {
	//blobvet:allow   `+`
	bad()
}
`)
	diags := run(t, pkg)
	var analyzersSeen []string
	for _, d := range diags {
		analyzersSeen = append(analyzersSeen, d.Analyzer)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics (%v), want bare-allow report plus unsuppressed call", len(diags), analyzersSeen)
	}
}
