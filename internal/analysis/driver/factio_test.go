package driver_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"blobdb/internal/analysis/driver"
	"blobdb/internal/analysis/passes/summary"
)

// TestFactRoundTrip is a property test over the gob wire path: randomly
// generated FuncSummary facts — the deepest structures any analyzer
// ships, nested slices of structs with every field class the summary
// pass produces — must survive WriteFacts → ReadFacts byte-exact across
// an arbitrary mix of packages and object paths.
//
// The one representable shape the generator must avoid is an allocated
// empty slice: gob transmits nil and empty slices identically and
// decodes both as nil, so a fact holding []T{} would "round-trip" to a
// DeepEqual-different value. The summary pass only ever appends to nil
// slices, so the wire format never carries the distinction; the
// generator mirrors that by leaving empty fields nil.
func TestFactRoundTrip(t *testing.T) {
	gob.Register(&summary.FuncSummary{})
	rng := rand.New(rand.NewSource(0x5eed))

	for trial := 0; trial < 200; trial++ {
		in := driver.NewFacts()
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			key := driver.FactKey{
				Analyzer: "summary",
				PkgPath:  randPkg(rng),
				ObjPath:  randObjPath(rng),
			}
			in.Put(key, randSummary(rng))
		}

		var buf bytes.Buffer
		if err := driver.WriteFacts(in, &buf); err != nil {
			t.Fatalf("trial %d: WriteFacts: %v", trial, err)
		}
		out := driver.NewFacts()
		if err := driver.ReadFacts(out, &buf); err != nil {
			t.Fatalf("trial %d: ReadFacts: %v", trial, err)
		}

		keys, values := in.All()
		gotKeys, gotValues := out.All()
		if !reflect.DeepEqual(keys, gotKeys) {
			t.Fatalf("trial %d: keys changed across the wire:\n in: %v\nout: %v", trial, keys, gotKeys)
		}
		for i := range keys {
			if !reflect.DeepEqual(values[i], gotValues[i]) {
				t.Fatalf("trial %d: fact %v changed across the wire:\n in: %+v\nout: %+v",
					trial, keys[i], values[i], gotValues[i])
			}
		}
	}
}

// TestFactRoundTripMergeAcrossStreams checks the transitive-import
// contract: a downstream reader merges several dependencies' streams
// into one store, and a later stream may overwrite an earlier entry
// (the re-export of a dependency's fact by a closer package wins, which
// is how the unitchecker's full-view files behave).
func TestFactRoundTripMergeAcrossStreams(t *testing.T) {
	gob.Register(&summary.FuncSummary{})
	rng := rand.New(rand.NewSource(0xfac7))

	shared := driver.FactKey{Analyzer: "summary", PkgPath: "blobdb/internal/wal", ObjPath: "Manager.writeOut"}
	first := randSummary(rng)
	second := randSummary(rng)

	var bufA, bufB bytes.Buffer
	a := driver.NewFacts()
	a.Put(shared, first)
	if err := driver.WriteFacts(a, &bufA); err != nil {
		t.Fatal(err)
	}
	b := driver.NewFacts()
	b.Put(shared, second)
	if err := driver.WriteFacts(b, &bufB); err != nil {
		t.Fatal(err)
	}

	merged := driver.NewFacts()
	if err := driver.ReadFacts(merged, &bufA); err != nil {
		t.Fatal(err)
	}
	if err := driver.ReadFacts(merged, &bufB); err != nil {
		t.Fatal(err)
	}
	var got summary.FuncSummary
	if !merged.Get(shared, &got) {
		t.Fatal("merged store lost the shared fact")
	}
	if !reflect.DeepEqual(&got, second) {
		t.Fatalf("later stream should win:\nwant %+v\ngot  %+v", second, &got)
	}
}

func randPkg(rng *rand.Rand) string {
	pkgs := []string{
		"blobdb/internal/wal", "blobdb/internal/core", "blobdb/internal/buffer",
		"blobdb/internal/storage", "blobdb/internal/maint",
	}
	return pkgs[rng.Intn(len(pkgs))]
}

func randObjPath(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("fn%d", rng.Intn(1000))
	}
	return fmt.Sprintf("T%d.m%d", rng.Intn(50), rng.Intn(50))
}

func randClass(rng *rand.Rand) string {
	return fmt.Sprintf("blobdb/internal/p%d.T.mu%d", rng.Intn(9), rng.Intn(9))
}

func randStrings(rng *rand.Rand, max int) []string {
	n := rng.Intn(max + 1)
	var out []string // nil when empty: the wire cannot carry []string{}
	for i := 0; i < n; i++ {
		out = append(out, randClass(rng))
	}
	return out
}

func randPos(rng *rand.Rand) string {
	return fmt.Sprintf("file%d.go:%d:%d", rng.Intn(9), rng.Intn(500)+1, rng.Intn(80)+1)
}

func randSummary(rng *rand.Rand) *summary.FuncSummary {
	s := &summary.FuncSummary{}
	for i := rng.Intn(4); i > 0; i-- {
		s.Acquires = append(s.Acquires, summary.Acquire{
			Class: randClass(rng), RLock: rng.Intn(2) == 0,
			Held: randStrings(rng, 3), Pos: randPos(rng),
		})
	}
	for i := rng.Intn(5); i > 0; i-- {
		s.Calls = append(s.Calls, summary.Call{
			PkgPath: randPkg(rng), ObjPath: randObjPath(rng),
			Field: rng.Intn(4) == 0, Held: randStrings(rng, 2), Pos: randPos(rng),
		})
	}
	for i := rng.Intn(3); i > 0; i-- {
		s.IO = append(s.IO, summary.Effect{Op: "WritePages", Pos: randPos(rng)})
	}
	for i := rng.Intn(2); i > 0; i-- {
		s.Queue = append(s.Queue, summary.Effect{Op: "SubQueue.Submit", Pos: randPos(rng)})
	}
	for i := rng.Intn(2); i > 0; i-- {
		s.WAL = append(s.WAL, summary.Effect{Op: "AppendLSN", Pos: randPos(rng)})
	}
	for i := rng.Intn(2); i > 0; i-- {
		s.Binds = append(s.Binds, summary.Bind{
			FieldPkg: randPkg(rng), FieldPath: "Manager.OnCheckpoint",
			PkgPath: randPkg(rng), ObjPath: randObjPath(rng),
		})
	}
	s.Unlocks = randStrings(rng, 2)
	if rng.Intn(3) == 0 {
		s.Pins = []string{"FixExtent", "FixExtents", "CreateExtent"}[rng.Intn(3)]
	}
	for i := rng.Intn(3); i > 0; i-- {
		s.Releases = append(s.Releases, rng.Intn(5))
	}
	return s
}
