// Package driver runs blobvet analyzers over type-checked packages.
//
// It provides the pieces shared by every entry point (standalone
// cmd/blobvet, the vet-protocol unitchecker, and the analysistest
// harness): the cross-package fact store, the per-package runner, and
// //blobvet:allow suppression filtering.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"

	"blobdb/internal/analysis"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Diag is one rendered diagnostic.
type Diag struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s [blobvet:%s]", d.Pos, d.Message, d.Analyzer)
}

// FactKey identifies one exported object fact.
type FactKey struct {
	Analyzer string
	PkgPath  string
	ObjPath  string
}

// Facts is the cross-package fact store. Packages must be analyzed in
// dependency order so importers observe their dependencies' facts.
type Facts struct {
	m map[FactKey]analysis.Fact
}

func NewFacts() *Facts { return &Facts{m: map[FactKey]analysis.Fact{}} }

// Put records fact under key, replacing any previous value.
func (f *Facts) Put(key FactKey, fact analysis.Fact) { f.m[key] = fact }

// Get copies the stored fact for key into out (which must be a pointer of
// the stored concrete type) and reports whether one existed.
func (f *Facts) Get(key FactKey, out analysis.Fact) bool {
	got, ok := f.m[key]
	if !ok {
		return false
	}
	ov := reflect.ValueOf(out)
	gv := reflect.ValueOf(got)
	if ov.Type() != gv.Type() {
		return false
	}
	ov.Elem().Set(gv.Elem())
	return true
}

// AllOf returns every fact exported by one analyzer, across all packages
// seen so far, in deterministic (PkgPath, ObjPath) order. This is the
// enumeration the interprocedural passes consume: unexported dependency
// functions have no types.Object on the importing side, so their facts
// are only reachable by key.
func (f *Facts) AllOf(analyzer string) []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, fact := range f.m {
		if k.Analyzer == analyzer {
			out = append(out, analysis.ObjectFact{PkgPath: k.PkgPath, ObjPath: k.ObjPath, Fact: fact})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		return out[i].ObjPath < out[j].ObjPath
	})
	return out
}

// All returns the stored facts in deterministic key order.
func (f *Facts) All() ([]FactKey, []analysis.Fact) {
	keys := make([]FactKey, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.ObjPath < b.ObjPath
	})
	facts := make([]analysis.Fact, len(keys))
	for i, k := range keys {
		facts[i] = f.m[k]
	}
	return keys, facts
}

// Expand returns analyzers plus their transitive Requires closure in
// dependency order (requirements strictly before their dependents),
// deduplicated. Every entry point expands before running, so listing an
// interprocedural analyzer is enough — its summary producer runs first
// on the same package, and its facts are in the store when the consumer
// asks for them.
func Expand(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{}
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// RunPackage applies analyzers (expanded with their Requires closure, in
// dependency order) to pkg, reading and writing object facts through
// facts, and returns the surviving diagnostics: suppressed ones
// (reasoned //blobvet:allow on the same or preceding line) are dropped,
// every reason-less allow comment is itself reported under the
// pseudo-analyzer name "allow", and so is every reasoned allow that no
// longer suppresses anything (the stale-allow audit; _test.go files are
// exempt, as analyzers skip them).
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer, facts *Facts) ([]Diag, error) {
	sup := analysis.ScanSuppressions(pkg.Fset, pkg.Files)

	var out []Diag
	for _, a := range Expand(analyzers) {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if sup.Suppressed(pkg.Fset, d.Pos) {
				return
			}
			out = append(out, Diag{Analyzer: a.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
			if obj == nil || obj.Pkg() == nil {
				return false
			}
			op := analysis.ObjectPath(obj)
			if op == "" {
				return false
			}
			return facts.Get(FactKey{Analyzer: a.Name, PkgPath: obj.Pkg().Path(), ObjPath: op}, fact)
		}
		pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
			if obj == nil || obj.Pkg() != pkg.Types {
				return
			}
			op := analysis.ObjectPath(obj)
			if op == "" {
				return
			}
			facts.Put(FactKey{Analyzer: a.Name, PkgPath: pkg.Types.Path(), ObjPath: op}, fact)
		}
		pass.AllObjectFacts = func(analyzer string) []analysis.ObjectFact {
			return facts.AllOf(analyzer)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	for _, d := range sup.BareAllows() {
		out = append(out, Diag{Analyzer: "allow", Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
	}
	for _, d := range sup.Stale() {
		out = append(out, Diag{Analyzer: "allow", Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
