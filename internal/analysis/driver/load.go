package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Export     string
	DepOnly    bool
	Imports    []string
	Error      *struct{ Err string }
}

// Load lists patterns in dir with the go tool and type-checks every
// non-dependency match from source, resolving dependencies through the
// compiler export data that `go list -export` places in the build cache.
// Packages are returned in dependency order, so analyzing them in slice
// order makes facts flow correctly.
//
// This is the standalone (non `go vet`) loading path: it needs only the
// Go toolchain, no network and no external modules.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := map[string]*listPkg{}
	var order []string
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		byPath[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}

	exports := map[string]string{}
	targets := map[string]bool{}
	for _, path := range order {
		p := byPath[path]
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
			}
			targets[p.ImportPath] = true
		}
	}

	// Dependency-order the targets (deps first) so each source type-check
	// can resolve module-internal imports to already-built packages.
	var topo []string
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] || !targets[path] {
			return
		}
		seen[path] = true
		for _, imp := range byPath[path].Imports {
			visit(imp)
		}
		topo = append(topo, path)
	}
	for _, path := range order {
		visit(path)
	}

	loader := NewSourceLoader(token.NewFileSet(), exports)
	var out []*Package
	for _, path := range topo {
		p := byPath[path]
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which the blobvet loader does not support", path)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.Load(path, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// A SourceLoader type-checks packages from explicit sources. Imports
// resolve first to packages previously loaded through the same
// SourceLoader (sharing type identities), then to gc export data
// registered with AddExport.
type SourceLoader struct {
	fset *token.FileSet
	imp  *hybridImporter
}

func NewSourceLoader(fset *token.FileSet, exports map[string]string) *SourceLoader {
	if exports == nil {
		exports = map[string]string{}
	}
	return &SourceLoader{fset: fset, imp: newHybridImporter(fset, exports)}
}

func (l *SourceLoader) Fset() *token.FileSet { return l.fset }

// AddExport registers a gc export-data file for an import path.
func (l *SourceLoader) AddExport(path, file string) { l.imp.exports[path] = file }

// Load parses and type-checks one package. File names are resolved
// relative to dir unless absolute. The result is registered so later
// loads can import it by path.
func (l *SourceLoader) Load(path, dir string, files []string) (*Package, error) {
	pkg, err := typecheck(l.fset, l.imp, path, dir, files)
	if err != nil {
		return nil, err
	}
	l.imp.source[path] = pkg.Types
	return pkg, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if dir != "" && !filepath.IsAbs(name) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// hybridImporter resolves imports first to packages this process has
// already type-checked from source (so analyzed packages share type
// identities with their analyzed dependencies), then to gc export data.
type hybridImporter struct {
	source  map[string]*types.Package
	exports map[string]string
	gc      types.ImporterFrom
}

func newHybridImporter(fset *token.FileSet, exports map[string]string) *hybridImporter {
	h := &hybridImporter{source: map[string]*types.Package{}, exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := h.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	// The Deprecated: paragraph on ForCompiler covers only the nil-lookup
	// $GOPATH fallback; we always pass a lookup.
	h.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return h
}

func (i *hybridImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *hybridImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := i.source[path]; ok {
		return p, nil
	}
	return i.gc.ImportFrom(path, dir, mode)
}
