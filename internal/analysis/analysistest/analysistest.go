// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A fixture may
// import other fixtures (resolved under the same src tree — facts flow
// between them in dependency order) or standard-library packages
// (resolved through `go list -export` compiler export data).
//
// Expectations are comments on the line the diagnostic is reported at:
//
//	bad() // want `regexp` "another regexp"
//
// Every reported diagnostic must match an expectation on its line and
// every expectation must be matched, including diagnostics from the
// "allow" pseudo-analyzer (reason-less //blobvet:allow comments).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/driver"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each named fixture package (plus fixture dependencies) and
// applies a, failing t on any mismatch between diagnostics and // want
// expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")

	// Discover the fixture import graph and the external imports.
	files := map[string][]string{} // fixture path -> file names
	var topo []string
	external := map[string]bool{}
	seen := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := filepath.Join(src, filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %s: %v", path, err)
		}
		var names []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			return fmt.Errorf("fixture package %s: no Go files", path)
		}
		fset := token.NewFileSet()
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				if _, err := os.Stat(filepath.Join(src, filepath.FromSlash(ipath))); err == nil {
					if err := visit(ipath); err != nil {
						return err
					}
				} else {
					external[ipath] = true
				}
			}
		}
		files[path] = names
		topo = append(topo, path)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			t.Fatal(err)
		}
	}

	exports, err := externalExports(external)
	if err != nil {
		t.Fatal(err)
	}

	loader := driver.NewSourceLoader(token.NewFileSet(), exports)
	facts := driver.NewFacts()
	var diags []driver.Diag
	var loaded []*driver.Package
	for _, path := range topo {
		dir := filepath.Join(src, filepath.FromSlash(path))
		pkg, err := loader.Load(path, dir, files[path])
		if err != nil {
			t.Fatal(err)
		}
		loaded = append(loaded, pkg)
		ds, err := driver.RunPackage(pkg, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}

	checkWants(t, loader.Fset(), loaded, diags)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, pkgs []*driver.Package, diags []driver.Diag) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
					for rest != "" {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Errorf("%s: malformed want: %q", pos, rest)
							break
						}
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s: malformed want string %s: %v", pos, q, err)
							break
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
							break
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
						rest = strings.TrimSpace(rest[len(q):])
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
}

// externalExports resolves non-fixture (standard library) imports to gc
// export-data files via `go list -deps -export`, cached process-wide.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

func externalExports(paths map[string]bool) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for p := range paths {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		args := append([]string{"list", "-e", "-json", "-deps", "-export", "--"}, missing...)
		cmd := exec.Command("go", args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list %v: %v\n%s", missing, err, stderr.String())
		}
		dec := json.NewDecoder(&stdout)
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(exportCache))
	for k, v := range exportCache {
		out[k] = v
	}
	return out, nil
}
