#!/bin/sh
# bench-shard: run the multi-shard commit-scaling benchmark (1/2/4 shards
# x 32 writers + 8 readers on commit-latency devices) and record commit
# throughput, PUT latency percentiles, and the scaling ratio vs one shard
# in BENCH_PR6.json. The acceptance bar for the sharded router is >= 3x
# commit throughput at 4 shards / 32 writers.
#
# Usage: scripts/bench-shard.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
go run ./cmd/blobbench -shardbench-json "$out"
echo "recorded $out"
