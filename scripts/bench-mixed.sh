#!/bin/sh
# bench-mixed: run the mixed 32-reader/8-writer tail-latency benchmark
# (inline queue + materialized reads vs pipelined submission queue +
# zero-copy aliased reads) on the wall-clock latency device and record
# cold-read latency, read/write p50/p99, copies-per-read, and the
# alias/queue counters in BENCH_PR8.json — the before/after evidence for
# the PR 8 read and commit pipelines (§IV-B, §III-C).
#
# Usage: scripts/bench-mixed.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"
go run ./cmd/blobbench -mixedbench-json "$out"
echo "recorded $out"
