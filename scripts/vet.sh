#!/bin/sh
# vet: run the blobvet analyzers over the whole module through the real
# `go vet -vettool` protocol — the same invocation CI uses.
#
# blobvet machine-checks the engine's concurrency and durability
# invariants (see DESIGN.md "Machine-checked invariants"): frame pin
# discipline, no device I/O under pool latches, replay-stable output in
# simulation-checked paths, WAL-owned sync ordering, and migration off
# deprecated blob APIs. Exceptions need an inline
# `//blobvet:allow <reason>` — a reason-less allow is itself an error.
set -eu
cd "$(dirname "$0")/.."

tool=$(mktemp -t blobvet.XXXXXX)
trap 'rm -f "$tool"' EXIT
go build -o "$tool" ./cmd/blobvet

go vet -vettool="$tool" ./...
echo "blobvet: clean"
