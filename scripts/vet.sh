#!/bin/sh
# vet: run the blobvet analyzers over the whole module through the real
# `go vet -vettool` protocol — the same invocation CI uses.
#
# blobvet machine-checks the engine's concurrency and durability
# invariants (see DESIGN.md "Machine-checked invariants"): frame pin
# discipline (through helper boundaries), no device I/O under pool
# latches at any call depth, a cycle-free global lock-acquisition graph,
# replay-stable output in simulation-checked paths, WAL-owned sync
# ordering traced through callee chains, and migration off deprecated
# blob APIs. Exceptions need an inline `//blobvet:allow <reason>` — a
# reason-less allow is itself an error, and a reasoned allow that no
# longer suppresses anything is reported as stale.
#
# The run is timed: the interprocedural passes (summary facts + the
# lock-order graph) are expected to keep the whole-module run in the
# low seconds, and the job log records the wall clock so a regression
# is visible where it happens.
set -eu
cd "$(dirname "$0")/.."

tool=$(mktemp -t blobvet.XXXXXX)
trap 'rm -f "$tool"' EXIT
go build -o "$tool" ./cmd/blobvet

time go vet -vettool="$tool" ./...
echo "blobvet: clean"
