#!/bin/sh
# deprecation-lint: keep the deprecated one-shot blob API from spreading.
#
# Txn.PutBlob and Txn.GrowBlob are one-release compat shims over the
# streaming writer (Txn.CreateBlob / Txn.AppendBlob). Existing tests may
# keep exercising them — they pin the shims' behavior — but no new
# non-test engine code may call them. internal/core/txn.go is allowlisted
# because it is where the shims themselves live.
set -eu
cd "$(dirname "$0")/.."

bad=$(grep -rnE '\.(PutBlob|GrowBlob)\(' internal \
	--include='*.go' \
	--exclude='*_test.go' \
	| grep -v '^internal/core/txn\.go:' \
	|| true)

if [ -n "$bad" ]; then
	echo "deprecated one-shot blob API used in non-test internal/ code:" >&2
	echo "$bad" >&2
	echo "use Txn.CreateBlob / Txn.AppendBlob (streaming) instead." >&2
	exit 1
fi
echo "deprecation-lint: clean"
