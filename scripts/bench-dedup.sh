#!/bin/sh
# Runs the content-addressed dedup + online defragmentation benchmark
# (PR 9) and writes BENCH_PR9.json at the repo root.
#
# Acceptance bars checked by the report:
#   - dedup_ratio > 1 with dedup_hits > 0 (identical PUTs share extents)
#   - score_strictly_decreasing: every defrag round lowers the
#     fragmentation score
#   - read_p99_regression <= 0.10: the read tail under relocation stays
#     within 10% of the quiet baseline
set -e
cd "$(dirname "$0")/.."
go run ./cmd/blobbench -dedupbench-json BENCH_PR9.json
