#!/bin/sh
# bench-read: run the concurrent-read benchmark (cold/warm × extents ×
# readers, sequential FixExtent vs batched FixExtents) on the wall-clock
# latency device and record throughput + p50/p99 per scenario in
# BENCH_PR3.json — the start of the perf trajectory for the batched read
# path (§III-D).
#
# Usage: scripts/bench-read.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR3.json}"
go run ./cmd/blobbench -concread-json "$out"
echo "recorded $out"
