// Command blobbench regenerates the paper's evaluation: every table and
// figure of "Why Files If You Have a DBMS?" (ICDE 2024) has a runner that
// prints the corresponding rows or series.
//
// Usage:
//
//	blobbench -list              # show experiment ids
//	blobbench -exp fig6-10MB     # run one experiment
//	blobbench -exp all           # run everything (takes a while)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"blobdb/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	concreadJSON := flag.String("concread-json", "", "run the concurrent-read benchmark and write the JSON report to this path")
	mixedJSON := flag.String("mixedbench-json", "", "run the mixed read/write tail-latency benchmark and write the JSON report to this path")
	shardJSON := flag.String("shardbench-json", "", "run the multi-shard commit-scaling benchmark and write the JSON report to this path")
	replJSON := flag.String("replbench-json", "", "run the replication-lag benchmark and write the JSON report to this path")
	dedupJSON := flag.String("dedupbench-json", "", "run the dedup + online-defragmentation benchmark and write the JSON report to this path")
	flag.Parse()

	if *dedupJSON != "" {
		rep, err := bench.DedupDefrag(bench.DedupBenchOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*dedupJSON, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dedup ratio %.2fx (%d hits), frag score %.3f -> %.3f over %d rounds (%d moves, %d pages off the HWM)\n",
			rep.DedupRatio, rep.DedupHits, rep.ScorePreDefrag, rep.ScorePostDefrag,
			len(rep.Rounds), rep.TotalMoved, rep.HWMPagesReclaimed)
		fmt.Printf("read p99 during relocation: %.0fus vs %.0fus baseline (%+.1f%%)\n",
			rep.DefragReadP99Us, rep.BaselineReadP99Us, 100*rep.ReadP99Regression)
		fmt.Printf("wrote %s\n", *dedupJSON)
		return
	}

	if *replJSON != "" {
		rep, err := bench.ReplLag(bench.ReplBenchOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "replbench: %v\n", err)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "replbench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*replJSON, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "replbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replica apply %.1f MB/s, max lag %d LSNs, catch-up %.1fms\n",
			rep.ReplicaMBs, rep.MaxLagLSN, rep.CatchupMillis)
		fmt.Printf("wrote %s\n", *replJSON)
		return
	}

	if *shardJSON != "" {
		rep, err := bench.ShardScaling(bench.ShardBenchOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*shardJSON, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "shardbench: %v\n", err)
			os.Exit(1)
		}
		for key, ratio := range rep.ScalingVsOneShard {
			fmt.Printf("commit throughput at %s: %.2fx one shard\n", key, ratio)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *shardJSON, len(rep.Scenarios))
		return
	}

	if *mixedJSON != "" {
		rep, err := bench.MixedLoad(bench.MixedBenchOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mixedbench: %v\n", err)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mixedbench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*mixedJSON, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mixedbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("cold read %.2fx, read p99 %.2fx, write p99 %.2fx, %.2f fewer copies/read\n",
			rep.ColdReadSpeedup, rep.ReadP99Speedup, rep.WriteP99Speedup, rep.CopyReduction)
		fmt.Printf("wrote %s (%d scenarios)\n", *mixedJSON, len(rep.Scenarios))
		return
	}

	if *concreadJSON != "" {
		rep, err := bench.ConcurrentRead(bench.ConcreadOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "concread: %v\n", err)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "concread: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*concreadJSON, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "concread: %v\n", err)
			os.Exit(1)
		}
		for key, ratio := range rep.ColdSpeedupAt16 {
			fmt.Printf("cold @16 readers, %s: batched is %.1fx sequential\n", key, ratio)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *concreadJSON, len(rep.Scenarios))
		return
	}

	exps := bench.Experiments()
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range ids {
			fmt.Println("  ", id)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	run := func(id string) {
		fn, ok := exps[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		fmt.Printf("(%s in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range ids {
			run(id)
		}
		return
	}
	run(*exp)
}
