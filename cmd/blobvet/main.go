// Blobvet is the engine's static-analysis multichecker. It machine-checks
// the concurrency and durability invariants the design documents promise:
// pin discipline on buffer frames, no device I/O under pool latches,
// deterministic output in replay-checked paths, WAL-owned sync ordering,
// global lock-acquisition order (no ABBA cycles), and migration off
// deprecated blob APIs. The interprocedural checks run on function
// effect summaries computed by the summary pass, which every driver runs
// automatically as a requirement of the listed analyzers.
//
// Two modes:
//
//	go vet -vettool=$(which blobvet) ./...   # unitchecker protocol, CI mode
//	blobvet ./...                            # standalone whole-module run
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"blobdb/internal/analysis"
	"blobdb/internal/analysis/driver"
	"blobdb/internal/analysis/passes/deprecatedblobapi"
	"blobdb/internal/analysis/passes/framerelease"
	"blobdb/internal/analysis/passes/lockio"
	"blobdb/internal/analysis/passes/lockorder"
	"blobdb/internal/analysis/passes/nondet"
	"blobdb/internal/analysis/passes/walorder"
	"blobdb/internal/analysis/unitchecker"
)

// analyzers are the reporting passes; the summary pass joins every run
// implicitly through their Requires edges (driver.Expand).
var analyzers = []*analysis.Analyzer{
	deprecatedblobapi.Analyzer,
	framerelease.Analyzer,
	lockio.Analyzer,
	lockorder.Analyzer,
	nondet.Analyzer,
	walorder.Analyzer,
}

func main() {
	flags := flag.NewFlagSet("blobvet", flag.ExitOnError)
	flags.Usage = usage
	versionFlag := flags.String("V", "", "print version and exit (-V=full for cmd/go handshake)")
	flagsFlag := flags.Bool("flags", false, "print analyzer flags in JSON (cmd/go handshake)")
	jsonFlag := flags.Bool("json", false, "emit JSON output instead of text diagnostics")
	flags.Parse(os.Args[1:])

	if *versionFlag != "" {
		printVersion(*versionFlag)
		return
	}
	if *flagsFlag {
		printFlagDefs()
		return
	}

	args := flags.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitchecker.Run(args[0], analyzers, *jsonFlag)
		return
	}

	runStandalone(args, *jsonFlag)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: blobvet [-json] [packages]\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which blobvet) [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, doc)
	}
	os.Exit(2)
}

// printVersion implements the cmd/go tool handshake: with -V=full the
// version line must be unique for each content of the vet tool binary,
// so the go command can include it in the build cache key.
func printVersion(mode string) {
	progname := "blobvet"
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err2 := os.Open(exe)
		if err2 == nil {
			io.Copy(h, f)
			f.Close()
			err = nil
		} else {
			err = err2
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "blobvet: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlagDefs tells cmd/go which tool flags may be forwarded from the
// go vet command line (the shape is decoded by cmd/go/internal/work).
func printFlagDefs() {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{{Name: "json", Bool: true, Usage: "emit JSON output"}}
	data, _ := json.Marshal(defs)
	fmt.Println(string(data))
}

// runStandalone loads and analyzes whole packages from source, outside
// the go vet build graph. Facts still flow between packages because
// driver.Load returns dependencies in topological order.
func runStandalone(patterns []string, jsonOut bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blobvet: %v\n", err)
		os.Exit(1)
	}
	facts := driver.NewFacts()
	total := 0
	for _, pkg := range pkgs {
		diags, err := driver.RunPackage(pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blobvet: %s: %v\n", pkg.Path, err)
			os.Exit(1)
		}
		for _, d := range diags {
			if jsonOut {
				out, _ := json.Marshal(map[string]string{
					"analyzer": d.Analyzer,
					"posn":     d.Pos.String(),
					"message":  d.Message,
				})
				fmt.Println(string(out))
			} else {
				fmt.Printf("%s\n", d)
			}
		}
		total += len(diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "blobvet: %d diagnostic(s)\n", total)
		os.Exit(2)
	}
}
