// Command crashsim explores deterministic crash schedules against the
// single-flush commit protocol and verifies every recovered image against
// the reference model (internal/crashsim/refmodel).
//
// Usage:
//
//	crashsim                                   # short sweep, both tear modes
//	crashsim -traces 50 -points 200            # nightly-sized sweep
//	crashsim -seed 7 -synccommit -smallpool    # stress the sync path under eviction
//	crashsim -trace-seed N -crashpoint K       # replay one schedule
//
// Every failure prints a one-line replay invocation; the process exits
// non-zero if any schedule fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"blobdb/internal/crashsim"
	"blobdb/internal/storage"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed deriving trace seeds and crash-point samples")
		traces    = flag.Int("traces", 0, "op traces to explore (default: the short CI budget)")
		steps     = flag.Int("steps", 0, "ops per trace (default: the short CI budget)")
		points    = flag.Int("points", 0, "crash points sampled per trace and tear mode (default: the short CI budget)")
		tear      = flag.String("tear", "", "restrict to one tear mode (ordered|scramble); default explores both")
		syncMode  = flag.Bool("synccommit", false, "use the synchronous commit path instead of the async group-commit pipeline")
		smallPool = flag.Bool("smallpool", false, "shrink the buffer pool so flushes contend with eviction")
		quiet     = flag.Bool("q", false, "suppress per-trace progress output")

		traceSeed = flag.Int64("trace-seed", 0, "replay: trace seed of one schedule")
		crashOp   = flag.Int("crashpoint", -2, "replay: mutating-op index to crash at (-1: end of trace)")
	)
	flag.Parse()

	cfg := crashsim.DefaultConfig(*seed)
	cfg.Sync = *syncMode
	cfg.SmallPool = *smallPool
	if *traces > 0 {
		cfg.Traces = *traces
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *points > 0 {
		cfg.Points = *points
	}
	if *tear != "" {
		mode, err := storage.ParseTearMode(*tear)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Modes = []storage.TearMode{mode}
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Replay mode: one schedule, identified exactly as failures print it.
	if *crashOp != -2 || *traceSeed != 0 {
		mode := storage.TearScramble
		if len(cfg.Modes) == 1 {
			mode = cfg.Modes[0]
		}
		s := crashsim.Schedule{TraceSeed: *traceSeed, CrashOp: *crashOp, Mode: mode}
		res, err := cfg.RunSchedule(s, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Printf("PASS %v (%d device ops, recovery %+v)\n", s, res.Ops, *res.Report)
		return
	}

	stats, failures := crashsim.Explore(cfg)
	fmt.Printf("explored %d schedules across %d traces (seed %d)\n", stats.Schedules, stats.Traces, *seed)
	if stats.Failures == 0 {
		fmt.Println("all schedules recovered within the reference model")
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
	}
	if stats.Failures > len(failures) {
		fmt.Fprintf(os.Stderr, "...and %d more failures\n", stats.Failures-len(failures))
	}
	os.Exit(1)
}
