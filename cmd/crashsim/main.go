// Command crashsim explores deterministic crash schedules against the
// single-flush commit protocol and verifies every recovered image against
// the reference model (internal/crashsim/refmodel).
//
// Usage:
//
//	crashsim                                   # short sweep, both tear modes
//	crashsim -traces 50 -points 200            # nightly-sized sweep
//	crashsim -seed 7 -synccommit -smallpool    # stress the sync path under eviction
//	crashsim -dedup                            # dedup/relocation-heavy traces (refcount ledger)
//	crashsim -trace-seed N -crashpoint K       # replay one schedule
//	crashsim -topology -shards 3               # one-shard-crash topology schedules
//	crashsim -topology -trace-seed N -crashpoint K -topo-crash-shard S [-topo-rebalance]
//	crashsim -failover                         # crash the primary, promote the replica
//	crashsim -failover -trace-seed N -crashpoint K -pull-every P
//
// Every failure prints a one-line replay invocation; the process exits
// non-zero if any schedule fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"blobdb/internal/crashsim"
	"blobdb/internal/storage"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed deriving trace seeds and crash-point samples")
		traces    = flag.Int("traces", 0, "op traces to explore (default: the short CI budget)")
		steps     = flag.Int("steps", 0, "ops per trace (default: the short CI budget)")
		points    = flag.Int("points", 0, "crash points sampled per trace and tear mode (default: the short CI budget)")
		tear      = flag.String("tear", "", "restrict to one tear mode (ordered|scramble); default explores both")
		syncMode  = flag.Bool("synccommit", false, "use the synchronous commit path instead of the async group-commit pipeline")
		smallPool = flag.Bool("smallpool", false, "shrink the buffer pool so flushes contend with eviction")
		dedupMode = flag.Bool("dedup", false, "generate dedup/relocation-heavy traces (dup-put, dup-put-abort, relocate families) exercising the refcount ledger")
		quiet     = flag.Bool("q", false, "suppress per-trace progress output")

		traceSeed = flag.Int64("trace-seed", 0, "replay: trace seed of one schedule")
		crashOp   = flag.Int("crashpoint", -2, "replay: mutating-op index to crash at (-1: end of trace)")

		topology   = flag.Bool("topology", false, "explore sharded-topology schedules: crash one shard's device, verify survivor isolation, recovery, and reshard safety")
		shards     = flag.Int("shards", 0, "topology: ring members at trace start (default 3)")
		crashShard = flag.Int("topo-crash-shard", 0, "topology replay: shard whose device the crash point arms")
		rebalance  = flag.Bool("topo-rebalance", false, "topology replay: reshard into a new shard after the trace")

		failover  = flag.Bool("failover", false, "explore failover schedules: crash a replicated primary, promote the replica, verify no acknowledged commit at or below the replicated LSN horizon is lost")
		pullEvery = flag.Int("pull-every", 0, "failover: replica pull cadence in commit batches (0: vary 1..3 per trace; replay: the cadence the failure printed)")
	)
	flag.Parse()

	if *topology {
		runTopology(*seed, *shards, *traces, *steps, *points, *tear, *quiet,
			*traceSeed, *crashOp, *crashShard, *rebalance)
		return
	}
	if *failover {
		runFailover(*seed, *traces, *steps, *points, *tear, *quiet,
			*traceSeed, *crashOp, *pullEvery)
		return
	}

	cfg := crashsim.DefaultConfig(*seed)
	if *dedupMode {
		cfg = crashsim.DefaultDedupConfig(*seed)
	}
	cfg.Sync = *syncMode
	cfg.SmallPool = *smallPool
	if *traces > 0 {
		cfg.Traces = *traces
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *points > 0 {
		cfg.Points = *points
	}
	if *tear != "" {
		mode, err := storage.ParseTearMode(*tear)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Modes = []storage.TearMode{mode}
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Replay mode: one schedule, identified exactly as failures print it.
	if *crashOp != -2 || *traceSeed != 0 {
		mode := storage.TearScramble
		if len(cfg.Modes) == 1 {
			mode = cfg.Modes[0]
		}
		s := crashsim.Schedule{TraceSeed: *traceSeed, CrashOp: *crashOp, Mode: mode}
		res, err := cfg.RunSchedule(s, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Printf("PASS %v (%d device ops, recovery %+v)\n", s, res.Ops, *res.Report)
		return
	}

	stats, failures := crashsim.Explore(cfg)
	fmt.Printf("explored %d schedules across %d traces (seed %d)\n", stats.Schedules, stats.Traces, *seed)
	if stats.Failures == 0 {
		fmt.Println("all schedules recovered within the reference model")
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
	}
	if stats.Failures > len(failures) {
		fmt.Fprintf(os.Stderr, "...and %d more failures\n", stats.Failures-len(failures))
	}
	os.Exit(1)
}

// runFailover explores (or replays) primary-crash failover schedules: a
// read replica tails the primary, the primary's device crashes at
// sampled points, the replica is promoted, and the promoted image must
// hold every acknowledged commit at or below the replicated LSN horizon.
func runFailover(seed int64, traces, steps, points int, tear string, quiet bool,
	traceSeed int64, crashOp, pullEvery int) {
	cfg := crashsim.DefaultFailoverConfig(seed)
	if traces > 0 {
		cfg.Traces = traces
	}
	if steps > 0 {
		cfg.Steps = steps
	}
	if points > 0 {
		cfg.Points = points
	}
	if pullEvery > 0 {
		cfg.PullEvery = pullEvery
	}
	if tear != "" {
		mode, err := storage.ParseTearMode(tear)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Modes = []storage.TearMode{mode}
	}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Replay mode: one failover schedule, identified exactly as
	// FailoverFailure.Replay prints it.
	if crashOp != -2 || traceSeed != 0 {
		mode := storage.TearScramble
		if len(cfg.Modes) == 1 {
			mode = cfg.Modes[0]
		}
		s := crashsim.FailoverSchedule{TraceSeed: traceSeed, CrashOp: crashOp, Mode: mode, PullEvery: pullEvery}
		res, err := cfg.RunFailoverSchedule(s, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Printf("PASS %v (%d device ops, horizon %d, %d/%d batches replicated, %d resyncs)\n",
			s, res.Ops, res.Horizon, res.Replicated, res.Acked, res.Resyncs)
		return
	}

	stats, failures := crashsim.FailoverExplore(cfg)
	fmt.Printf("explored %d failover schedules across %d traces (seed %d): %d batches verified at/below horizon, %d schedules with a stale tail\n",
		stats.Schedules, stats.Traces, seed, stats.Replicated, stats.StaleTail)
	if stats.Failures == 0 {
		fmt.Println("all promoted images held the replicated-horizon contract")
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
	}
	if stats.Failures > len(failures) {
		fmt.Fprintf(os.Stderr, "...and %d more failures\n", stats.Failures-len(failures))
	}
	os.Exit(1)
}

// runTopology explores (or replays) sharded-topology crash schedules:
// one shard's device crashes mid-schedule, survivors must keep serving,
// the crashed shard must recover refmodel-clean, and a mid-rebalance
// crash must lose no blob on source or destination.
func runTopology(seed int64, shards, traces, steps, points int, tear string, quiet bool,
	traceSeed int64, crashOp, crashShard int, rebalance bool) {
	cfg := crashsim.DefaultTopoConfig(seed)
	if shards > 0 {
		cfg.Shards = shards
	}
	if traces > 0 {
		cfg.Traces = traces
	}
	if steps > 0 {
		cfg.Steps = steps
	}
	if points > 0 {
		cfg.Points = points
	}
	if tear != "" {
		mode, err := storage.ParseTearMode(tear)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Modes = []storage.TearMode{mode}
	}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Replay mode: one topology schedule, identified exactly as
	// TopoFailure.Replay prints it.
	if crashOp != -2 || traceSeed != 0 {
		mode := storage.TearScramble
		if len(cfg.Modes) == 1 {
			mode = cfg.Modes[0]
		}
		s := crashsim.TopoSchedule{
			TraceSeed:  traceSeed,
			Shards:     cfg.Shards,
			CrashShard: crashShard,
			CrashOp:    crashOp,
			Rebalance:  rebalance,
			Mode:       mode,
		}
		res, err := cfg.RunTopoSchedule(s, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Printf("PASS %v (device ops %v, served %d, shed %d, recovery %+v)\n",
			s, res.Ops, res.Served, res.Shed, res.Report)
		return
	}

	stats, failures := crashsim.TopoExplore(cfg)
	fmt.Printf("explored %d topology schedules across %d traces (seed %d): %d survivor ops, %d shed ops\n",
		stats.Schedules, stats.Traces, seed, stats.SurvivorOps, stats.ShedOps)
	if stats.Failures == 0 {
		fmt.Println("all topology schedules held isolation, recovery, and reshard safety")
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
	}
	if stats.Failures > len(failures) {
		fmt.Fprintf(os.Stderr, "...and %d more failures\n", stats.Failures-len(failures))
	}
	os.Exit(1)
}
