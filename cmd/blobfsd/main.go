// Command blobfsd is the interoperability demonstration of §III-E: it
// exposes a database's relations as a read-only file tree that external,
// unmodified programs can consume.
//
// The paper mounts the DBMS through the kernel FUSE driver; this
// reproduction serves the same tree over HTTP using the stock
// http.FileServer — an unmodified stdlib consumer of the io/fs.FS adapter —
// so any external tool (curl, a browser, wget) reads database BLOBs as
// plain files:
//
//	blobfsd -listen :8080 &
//	curl http://localhost:8080/image/cat.png
//
// By default it seeds a demo "image" and "document" relation in memory;
// with -db it serves an existing file-backed database (for example one
// created with blobctl), recovering it first:
//
//	blobctl -db app.blobdb put images xray1.png < xray1.png
//	blobfsd -db app.blobdb &
//	curl http://localhost:8080/images/xray1.png
//
// For the read-write network service, see cmd/blobserved.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blobdb/internal/core"
	"blobdb/internal/fusefs"
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve on")
	dbPath := flag.String("db", "", "file-backed database to serve (empty: in-memory demo seed)")
	pages := flag.Uint64("pages", 1<<16, "device size in 4KB pages when opening -db")
	flag.Parse()

	var db *core.DB
	if *dbPath != "" {
		dev, err := storage.OpenFileDevice(*dbPath, storage.DefaultPageSize, *pages, simtime.DefaultNVMe())
		if err != nil {
			log.Fatal(err)
		}
		defer dev.Close()
		var rep *core.RecoveryReport
		db, rep, err = core.RecoverDevice(dev, nil,
			core.WithPoolPages(int(*pages/8)), core.WithLogPages(*pages/16), core.WithCkptPages(*pages/8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recovered %s: %d committed txns, %d blobs validated, %d failed\n",
			*dbPath, rep.CommittedTxns, rep.ValidatedBlobs, rep.FailedBlobs)
	} else {
		dev := storage.NewMemDevice(storage.DefaultPageSize, 1<<15, nil)
		var err error
		db, err = core.New(dev,
			core.WithPoolPages(1<<13), core.WithLogPages(1<<12), core.WithCkptPages(1<<12))
		if err != nil {
			log.Fatal(err)
		}
		seed(db)
	}

	mount := fusefs.Mount(db, nil)
	defer mount.Unmount()
	srv := &http.Server{
		Addr:              *listen,
		Handler:           http.FileServer(http.FS(mount.Std())),
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	fmt.Fprintf(os.Stderr, "serving database relations as files on http://%s/\n", *listen)
	fmt.Fprintf(os.Stderr, "try: curl http://%s/image/cat.png\n", *listen)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "shut down cleanly")
}

// seed stores a few demonstration blobs: the paper's image/document layout.
func seed(db *core.DB) {
	for rel, files := range map[string]map[string][]byte{
		"image": {
			"cat.png": fakePNG("a very good cat"),
			"dog.png": fakePNG("a very good dog"),
		},
		"document": {
			"readme.txt": []byte("BLOBs served straight from the DBMS — no files involved.\n"),
		},
	} {
		if _, err := db.CreateRelation(rel); err != nil {
			log.Fatal(err)
		}
		tx := db.Begin(nil)
		for name, content := range files {
			bw, err := tx.CreateBlob(tx.Context(), rel, []byte(name))
			if err != nil {
				log.Fatal(err)
			}
			if _, err := bw.Write(content); err != nil {
				log.Fatal(err)
			}
			if err := bw.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
}

// fakePNG produces a tiny valid-PNG-signature payload for the demo.
func fakePNG(caption string) []byte {
	return append([]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}, []byte(caption)...)
}
