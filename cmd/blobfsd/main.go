// Command blobfsd is the interoperability demonstration of §III-E: it
// exposes a database's relations as a read-only file tree that external,
// unmodified programs can consume.
//
// The paper mounts the DBMS through the kernel FUSE driver; this
// reproduction serves the same tree over HTTP using the stock
// http.FileServer — an unmodified stdlib consumer of the io/fs.FS adapter —
// so any external tool (curl, a browser, wget) reads database BLOBs as
// plain files:
//
//	blobfsd -listen :8080 &
//	curl http://localhost:8080/image/cat.png
//
// At startup it seeds a demo "image" and "document" relation; point it at
// your own database by building on the core API instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"blobdb/internal/core"
	"blobdb/internal/fusefs"
	"blobdb/internal/storage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve on")
	flag.Parse()

	dev := storage.NewMemDevice(storage.DefaultPageSize, 1<<15, nil)
	db, err := core.Open(core.Options{Dev: dev, PoolPages: 1 << 13, LogPages: 1 << 12, CkptPages: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	seed(db)

	mount := fusefs.Mount(db, nil)
	fmt.Fprintf(os.Stderr, "serving database relations as files on http://%s/\n", *listen)
	fmt.Fprintf(os.Stderr, "try: curl http://%s/image/cat.png\n", *listen)
	log.Fatal(http.ListenAndServe(*listen, http.FileServer(http.FS(mount.Std()))))
}

// seed stores a few demonstration blobs: the paper's image/document layout.
func seed(db *core.DB) {
	for rel, files := range map[string]map[string][]byte{
		"image": {
			"cat.png": fakePNG("a very good cat"),
			"dog.png": fakePNG("a very good dog"),
		},
		"document": {
			"readme.txt": []byte("BLOBs served straight from the DBMS — no files involved.\n"),
		},
	} {
		if _, err := db.CreateRelation(rel); err != nil {
			log.Fatal(err)
		}
		tx := db.Begin(nil)
		for name, content := range files {
			if err := tx.PutBlob(rel, []byte(name), content); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
}

// fakePNG produces a tiny valid-PNG-signature payload for the demo.
func fakePNG(caption string) []byte {
	return append([]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}, []byte(caption)...)
}
