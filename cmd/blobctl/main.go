// Command blobctl is a small CLI over the engine: create a database file,
// store files as BLOBs, read them back, list and delete them. The database
// persists in a single file; every invocation recovers from it, so blobctl
// doubles as a live demonstration of the §III-C crash-consistency protocol.
//
// Usage:
//
//	blobctl -db app.blobdb init
//	blobctl -db app.blobdb put images xray1.png < xray1.png
//	blobctl -db app.blobdb get images xray1.png > copy.png
//	blobctl -db app.blobdb ls images
//	blobctl -db app.blobdb rm images xray1.png
//	blobctl -db app.blobdb stat images xray1.png
package main

import (
	"flag"
	"fmt"
	"os"

	"blobdb/internal/blob"
	"blobdb/internal/core"
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

const devPages = 1 << 16 // 256MB database file

func main() {
	dbPath := flag.String("db", "blobctl.blobdb", "database file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	dev, err := storage.NewFileDevice(*dbPath+".tmp", storage.DefaultPageSize, devPages, simtime.DefaultNVMe())
	if err != nil {
		fatal(err)
	}
	// NewFileDevice truncates; to persist across invocations copy any
	// existing database image in first.
	if prev, err := os.ReadFile(*dbPath); err == nil {
		pages := len(prev) / storage.DefaultPageSize
		if err := dev.WritePages(nil, 0, pages, prev); err != nil {
			fatal(err)
		}
	}

	db, rep, err := core.RecoverDevice(dev, nil,
		core.WithPoolPages(1<<13), core.WithLogPages(1<<12), core.WithCkptPages(1<<13))
	if err != nil {
		fatal(err)
	}
	if rep.FromCheckpoint || rep.CommittedTxns > 0 {
		fmt.Fprintf(os.Stderr, "recovered: %d committed txns, %d blobs validated, %d failed\n",
			rep.CommittedTxns, rep.ValidatedBlobs, rep.FailedBlobs)
	}

	switch args[0] {
	case "init":
		fmt.Fprintln(os.Stderr, "initialized", *dbPath)
	case "put":
		rel, key := relKey(args)
		ensureRelation(db, rel)
		// Stream stdin straight into the engine: blobctl never holds more
		// than one extent of the input in memory, so `blobctl put` handles
		// inputs far larger than RAM (up to the database size).
		tx := db.Begin(nil)
		bw, err := tx.CreateBlob(tx.Context(), rel, []byte(key))
		if err != nil {
			fatal(err)
		}
		n, err := bw.ReadFrom(os.Stdin)
		if err == nil {
			err = bw.Close()
		}
		if err != nil {
			fatal(err)
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "stored %s/%s (%d bytes)\n", rel, key, n)
	case "get":
		rel, key := relKey(args)
		tx := db.Begin(nil)
		content, err := tx.ReadBlobBytes(rel, []byte(key))
		if err != nil {
			fatal(err)
		}
		tx.Commit()
		os.Stdout.Write(content)
	case "ls":
		if len(args) < 2 {
			usage()
		}
		tx := db.Begin(nil)
		err := tx.Scan(args[1], nil, func(k, inline []byte, st *blob.State) bool {
			size := int64(len(inline))
			if st != nil {
				size = int64(st.Size)
			}
			fmt.Printf("%10d  %s\n", size, k)
			return true
		})
		tx.Commit()
		if err != nil {
			fatal(err)
		}
	case "rm":
		rel, key := relKey(args)
		tx := db.Begin(nil)
		if err := tx.DeleteBlob(rel, []byte(key)); err != nil {
			fatal(err)
		}
		if err := tx.Commit(); err != nil {
			fatal(err)
		}
	case "stat":
		rel, key := relKey(args)
		tx := db.Begin(nil)
		st, err := tx.BlobState(rel, []byte(key))
		if err != nil {
			fatal(err)
		}
		tx.Commit()
		fmt.Printf("size:    %d bytes\nextents: %d (+tail: %v)\nsha256:  %x\n",
			st.Size, st.NumExtents(), st.HasTail(), st.SHA256)
	default:
		usage()
	}

	// Checkpoint so the image is self-contained, then persist it.
	if err := db.WAL().Checkpoint(nil); err != nil {
		fatal(err)
	}
	if err := os.Rename(*dbPath+".tmp", *dbPath); err != nil {
		fatal(err)
	}
}

func ensureRelation(db *core.DB, rel string) {
	if _, err := db.Relation(rel); err != nil {
		if _, err := db.CreateRelation(rel); err != nil {
			fatal(err)
		}
	}
}

func relKey(args []string) (string, string) {
	if len(args) < 3 {
		usage()
	}
	return args[1], args[2]
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: blobctl [-db file] <command>
  init                   create the database
  put <relation> <key>   store stdin as a BLOB
  get <relation> <key>   write the BLOB to stdout
  ls <relation>          list keys and sizes
  rm <relation> <key>    delete a BLOB
  stat <relation> <key>  show the Blob State`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blobctl:", err)
	os.Exit(1)
}
