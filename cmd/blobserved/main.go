// Command blobserved serves a database's BLOBs over the network: the
// production counterpart of the read-only blobfsd demo. It exposes the
// internal/blobserver API (GET/PUT/DELETE /v1/{relation}/{key}, relation
// create/list, ranged reads, strong ETags) over HTTP/1.1 and cleartext
// HTTP/2, with admission control, group-committed writes, and graceful
// drain on SIGINT/SIGTERM.
//
//	blobserved -db app.blobdb -listen :9090 &
//	curl -X POST http://localhost:9090/v1/images
//	curl -T xray1.png http://localhost:9090/v1/images/xray1.png
//	curl -H 'Range: bytes=0-1023' http://localhost:9090/v1/images/xray1.png
//	curl http://localhost:9090/debug/vars
//
// The database file is operated on in place (storage.OpenFileDevice):
// kill the process at any point and the next start replays the WAL and
// validates every Blob State against its SHA-256 (§III-C). Without -db
// the server runs on an in-memory device and data is ephemeral.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blobdb/internal/blobserver"
	"blobdb/internal/core"
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9090", "address to serve on")
		dbPath      = flag.String("db", "", "database file (empty: in-memory, ephemeral)")
		pages       = flag.Uint64("pages", 1<<16, "device size in 4KB pages (256MB default)")
		maxInFlight = flag.Int("max-inflight", 64, "admission control: max in-flight requests")
		maxWait     = flag.Duration("max-queue-wait", 100*time.Millisecond, "admission control: bounded wait before 503")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	var dev storage.Device
	if *dbPath != "" {
		fdev, err := storage.OpenFileDevice(*dbPath, storage.DefaultPageSize, *pages, simtime.DefaultNVMe())
		if err != nil {
			log.Fatal(err)
		}
		defer fdev.Close()
		dev = fdev
	} else {
		dev = storage.NewMemDevice(storage.DefaultPageSize, *pages, nil)
	}

	db, rep, err := core.RecoverDevice(dev, nil,
		core.WithPoolPages(int(*pages/4)),
		core.WithLogPages(*pages/16),
		core.WithCkptPages(*pages/8),
		core.WithAsyncCommit(true), // PUTs batch through the group-commit pipeline
	)
	if err != nil {
		log.Fatal(err)
	}
	if rep.FromCheckpoint || rep.CommittedTxns > 0 {
		log.Printf("recovered: %d committed txns, %d blobs validated, %d failed, %d redone records",
			rep.CommittedTxns, rep.ValidatedBlobs, rep.FailedBlobs, rep.RedoneRecords)
	}

	bs := blobserver.New(blobserver.Config{
		DB:           db,
		MaxInFlight:  *maxInFlight,
		MaxQueueWait: *maxWait,
	})
	srv := &http.Server{Addr: *listen, Handler: bs}
	blobserver.ConfigureHTTPServer(srv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("draining (budget %s)...", *drainWait)
		bs.SetDraining(true)
		sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	log.Printf("serving blobs on http://%s/v1/ (db=%s)", *listen, orMem(*dbPath))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// In-flight requests are done; make everything queued durable and
	// leave a checkpoint so the next start recovers instantly.
	if err := db.CloseCommitter(); err != nil {
		log.Printf("commit pipeline: %v", err)
	}
	if err := db.WAL().Checkpoint(nil); err != nil {
		log.Printf("final checkpoint: %v", err)
	}
	log.Print("drained cleanly")
}

func orMem(p string) string {
	if p == "" {
		return "<memory>"
	}
	return p
}
