// Command blobserved serves a database's BLOBs over the network: the
// production counterpart of the read-only blobfsd demo. It exposes the
// internal/blobserver API (GET/PUT/DELETE /v1/{relation}/{key}, relation
// create/list, ranged reads, strong ETags) over HTTP/1.1 and cleartext
// HTTP/2, with admission control, group-committed writes, and graceful
// drain on SIGINT/SIGTERM.
//
//	blobserved -db app.blobdb -listen :9090 &
//	curl -X POST http://localhost:9090/v1/images
//	curl -T xray1.png http://localhost:9090/v1/images/xray1.png
//	curl -H 'Range: bytes=0-1023' http://localhost:9090/v1/images/xray1.png
//	curl http://localhost:9090/debug/vars
//
// With -shards=N the keyspace is partitioned across N fully independent
// engines — each with its own device, buffer pool, WAL, and group-commit
// pipeline — behind a consistent-hash router; the HTTP API is unchanged.
// The shard devices are derived from -db as <db>.s0, <db>.s1, ... (or N
// in-memory devices without -db):
//
//	blobserved -db app.blobdb -shards 4 -listen :9090
//
// Database files are operated on in place (storage.OpenFileDevice):
// kill the process at any point and the next start replays each shard's
// WAL and validates every Blob State against its SHA-256 (§III-C).
// Without -db the server runs on in-memory devices and data is ephemeral.
//
// With -replica-of the server runs as a log-shipping read replica: it
// continuously tails the primary's /repl/v1 stream into its own engine
// and serves GETs with bounded-staleness ETags (X-Replica-Applied-LSN);
// writes are rejected with 421 pointing at the primary. POST
// /admin/v1/promote ends replication and turns the server into a
// primary:
//
//	blobserved -listen :9090 -db app.blobdb &                   # primary
//	blobserved -listen :9091 -replica-of http://localhost:9090  # replica
//	curl -X POST http://localhost:9091/admin/v1/promote         # failover
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blobdb/internal/blobserver"
	"blobdb/internal/core"
	"blobdb/internal/maint"
	"blobdb/internal/repl"
	"blobdb/internal/shard"
	"blobdb/internal/simtime"
	"blobdb/internal/storage"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9090", "address to serve on")
		dbPath      = flag.String("db", "", "database file (empty: in-memory, ephemeral); with -shards>1, shard i uses <db>.s<i>")
		pages       = flag.Uint64("pages", 1<<16, "per-shard device size in 4KB pages (256MB default)")
		shards      = flag.Int("shards", 1, "number of independent engine shards behind the router")
		maxInFlight = flag.Int("max-inflight", 64, "admission control: max in-flight requests")
		maxWait     = flag.Duration("max-queue-wait", 100*time.Millisecond, "admission control: bounded wait before 503")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		queueDepth  = flag.Int("queue-depth", storage.DefaultQueueDepth, "per-shard device submission-queue depth (pool miss loads, eviction write-back, commit extent flush)")

		replicaOf    = flag.String("replica-of", "", "run as a read replica tailing this primary base URL (e.g. http://db0:9090)")
		syncInterval = flag.Duration("sync-interval", 200*time.Millisecond, "replica: pull cadence against the primary")

		defrag         = flag.Bool("defrag", false, "run the online defragmenter in the background (per shard)")
		defragInterval = flag.Duration("defrag-interval", 30*time.Second, "defragmenter: round cadence")
		defragMinScore = flag.Float64("defrag-min-score", 0.15, "defragmenter: skip rounds while the fragmentation score is below this")
		defragMaxMoves = flag.Int("defrag-max-moves", 64, "defragmenter: extent relocations per round")
		defragPause    = flag.Duration("defrag-pause", 0, "defragmenter: pause between individual moves (foreground-latency pacing)")
	)
	flag.Parse()
	if *shards < 1 {
		log.Fatal("-shards must be >= 1")
	}
	if *replicaOf != "" && *shards != 1 {
		// Replication is per WAL stream; a sharded replica set needs one
		// replica process (or engine) per shard.
		log.Fatal("-replica-of requires -shards=1")
	}

	dbs := make([]*core.DB, *shards)
	for i := range dbs {
		var dev storage.Device
		if *dbPath != "" {
			fdev, err := storage.OpenFileDevice(shardPath(*dbPath, i, *shards), storage.DefaultPageSize, *pages, simtime.DefaultNVMe())
			if err != nil {
				log.Fatal(err)
			}
			defer fdev.Close()
			dev = fdev
		} else {
			dev = storage.NewMemDevice(storage.DefaultPageSize, *pages, nil)
		}
		db, rep, err := core.RecoverDevice(dev, nil,
			core.WithPoolPages(int(*pages/4)),
			core.WithLogPages(*pages/16),
			core.WithCkptPages(*pages/8),
			core.WithAsyncCommit(true), // PUTs batch through the group-commit pipeline
			core.WithQueueDepth(*queueDepth),
		)
		if err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
		if rep.FromCheckpoint || rep.CommittedTxns > 0 {
			log.Printf("shard %d recovered: %d committed txns, %d blobs validated, %d failed, %d redone records",
				i, rep.CommittedTxns, rep.ValidatedBlobs, rep.FailedBlobs, rep.RedoneRecords)
		}
		dbs[i] = db
	}
	cluster := shard.New(dbs, shard.Options{
		// Each shard gets a proportional slice of the server-wide admission
		// budget (never less than a few slots) so one hot shard cannot
		// monopolize the whole server.
		MaxInFlightPerShard: max(4, *maxInFlight / *shards),
		MaxQueueWait:        *maxWait,
	})

	cfg := blobserver.Config{
		Cluster:      cluster,
		MaxInFlight:  *maxInFlight,
		MaxQueueWait: *maxWait,
	}
	var replica *repl.Replica
	if *replicaOf != "" {
		replica = repl.NewReplica(dbs[0], repl.NewHTTPSource(*replicaOf, nil))
		cfg.Replica = replica
		cfg.PrimaryURL = *replicaOf
	}
	var defraggers []*maint.Defragmenter
	if *defrag {
		cfg.ExtraVars = map[string]expvar.Var{}
		for i, db := range dbs {
			d := maint.New(db, maint.Config{
				MinScore: *defragMinScore,
				MaxMoves: *defragMaxMoves,
				Interval: *defragInterval,
				Pause:    *defragPause,
				Logf:     log.Printf,
			})
			defraggers = append(defraggers, d)
			cfg.ExtraVars[fmt.Sprintf("defrag_shard%d", i)] = d.Vars()
		}
	}
	bs := blobserver.New(cfg)
	srv := &http.Server{Addr: *listen, Handler: bs}
	blobserver.ConfigureHTTPServer(srv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if replica != nil {
		go replica.Run(ctx, *syncInterval, func(err error) {
			log.Printf("replication: %v", err)
		})
		log.Printf("replicating from %s (pull every %s; POST /admin/v1/promote to fail over)", *replicaOf, *syncInterval)
	}
	for _, d := range defraggers {
		go d.Run(ctx)
	}
	if *defrag {
		log.Printf("defragmenter on: every %s, min score %.2f, %d moves/round", *defragInterval, *defragMinScore, *defragMaxMoves)
	}
	go func() {
		<-ctx.Done()
		log.Printf("draining (budget %s)...", *drainWait)
		bs.SetDraining(true)
		sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	log.Printf("serving blobs on http://%s/v1/ (db=%s shards=%d)", *listen, orMem(*dbPath), *shards)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// In-flight requests are done; make every shard's queued commits
	// durable and leave per-shard checkpoints so the next start recovers
	// instantly.
	if err := cluster.Close(); err != nil {
		log.Printf("drain: %v", err)
	}
	log.Print("drained cleanly")
}

// shardPath derives shard i's database file from the base path. One shard
// keeps the plain path, so existing single-engine deployments reopen
// their file unchanged.
func shardPath(base string, i, n int) string {
	if n == 1 {
		return base
	}
	return fmt.Sprintf("%s.s%d", base, i)
}

func orMem(p string) string {
	if p == "" {
		return "<memory>"
	}
	return p
}
