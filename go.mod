module blobdb

go 1.22
