// Package blobdb is a Go reproduction of "Why Files If You Have a DBMS?"
// (Nguyen and Leis, ICDE 2024): a storage engine whose BLOB design writes
// every object to the device exactly once, resolves every object through a
// single indirection (the Blob State), indexes arbitrary-size BLOB content
// without copying it, and exposes BLOBs to unmodified external programs as
// read-only files.
//
// The package tree:
//
//	internal/core      the engine: relations, transactions, recovery, indexes
//	internal/blob      Blob State, extent allocation, single-flush protocol
//	internal/extent    the tier formula and extent allocator
//	internal/buffer    vmcache-style and hash-table buffer pools, aliasing
//	internal/wal       distributed write-ahead log, group commit
//	internal/btree     prefix-compressed B-tree with custom comparators
//	internal/fusefs    the FUSE-style read-only file surface + io/fs adapter
//	internal/fsim,
//	internal/oskern    simulated Ext4/XFS/BtrFS/F2FS competitors
//	internal/dbsim     PostgreSQL/MySQL/SQLite storage-path models
//	internal/bench     one runner per table and figure of the paper
//
// The benchmarks in bench_test.go regenerate the paper's evaluation; see
// EXPERIMENTS.md for paper-vs-measured results and DESIGN.md for the system
// inventory.
package blobdb
