package blobdb

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the full table/figure through the harness in
// internal/bench; the rendered result is printed once so `go test -bench`
// output doubles as the experiment report. cmd/blobbench runs the same
// experiments from the command line.

import (
	"runtime/debug"
	"sync"
	"testing"

	"blobdb/internal/bench"
)

var (
	printedMu sync.Mutex
	printed   = map[string]bool{}
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	fn := bench.Experiments()[id]
	if fn == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := fn()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}

		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			b.Logf("\n%s", res.String())
		}
		printedMu.Unlock()
		// Experiments allocate device slabs of hundreds of MB; return the
		// memory to the OS so a full -bench=. sweep stays within RAM.
		debug.FreeOSMemory()
	}
}

// BenchmarkFig5YCSB120B regenerates Figure 5 (YCSB, 120 B payload).
func BenchmarkFig5YCSB120B(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6a100KB regenerates Figure 6(a) (YCSB, 100 KB BLOBs).
func BenchmarkFig6a100KB(b *testing.B) { runExperiment(b, "fig6-100KB") }

// BenchmarkFig6b10MB regenerates Figure 6(b) (YCSB, 10 MB BLOBs).
func BenchmarkFig6b10MB(b *testing.B) { runExperiment(b, "fig6-10MB") }

// BenchmarkFig6cMixed regenerates Figure 6(c) (YCSB, 4 KB–10 MB BLOBs).
func BenchmarkFig6cMixed(b *testing.B) { runExperiment(b, "fig6-4KB-10MB") }

// BenchmarkFig6d1GB regenerates Figure 6(d) (YCSB, 1 GB BLOBs).
func BenchmarkFig6d1GB(b *testing.B) { runExperiment(b, "fig6-1GB") }

// BenchmarkFig7Metadata regenerates Figure 7 (Blob State scan vs fstat).
func BenchmarkFig7Metadata(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8WikiHot regenerates Figure 8 (Wikipedia reads, hot cache).
func BenchmarkFig8WikiHot(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9WikiCold regenerates Figure 9 (Wikipedia reads, cold cache).
func BenchmarkFig9WikiCold(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10BufferManagers regenerates Figure 10 (vmcache vs hash table).
func BenchmarkFig10BufferManagers(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Utilization regenerates Figure 11 (throughput vs fill level).
func BenchmarkFig11Utilization(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable2SharedArea regenerates Table II (aliasing-area overhead).
func BenchmarkTable2SharedArea(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Indexing regenerates Table III (Blob State vs prefix index).
func BenchmarkTable3Indexing(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4GitClone regenerates Table IV (git-clone trace replay).
func BenchmarkTable4GitClone(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkAblationTailExtent measures the §III-H tail-extent trade-off.
func BenchmarkAblationTailExtent(b *testing.B) { runExperiment(b, "ablation-tail") }

// BenchmarkAblationUpdateSchemes measures the delta-vs-clone crossover.
func BenchmarkAblationUpdateSchemes(b *testing.B) { runExperiment(b, "ablation-update") }

// BenchmarkAblationTierSweep sweeps tiers-per-level (capacity vs waste).
func BenchmarkAblationTierSweep(b *testing.B) { runExperiment(b, "ablation-tiers") }

// BenchmarkAblationAging measures the §VI out-of-place-write extension.
func BenchmarkAblationAging(b *testing.B) { runExperiment(b, "ablation-aging") }
